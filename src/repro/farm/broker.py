"""Farm broker: persistent queue, lease expiry, budgets, aggregation.

The broker is the only process that *decides* anything — workers just
execute.  Its responsibilities:

* **serve** — materialise the grid into the farm directory (pickled
  task files + one queue token per point), or *resume*: verify the
  directory holds the same grid (content keys must match) and replay
  the journal to restore per-task failure counts;
* **lease expiry** — a lease whose heartbeat deadline passed means a
  dead or wedged worker: journal ``expired``, count a failure, requeue
  with exponential backoff (``backoff × 2^(failures-1)``, capped);
* **failure budget** — a task failing (raise or expiry) more than
  ``max_failures`` times marks the farm ``FAILED`` and raises
  :exc:`~repro.exp.runner.TaskError`, mirroring the serial runner;
* **completion authority** — a task is done iff its row loads from the
  content-addressed store.  The journal only informs budgets and
  observability; a journal lost or truncated mid-run costs retried
  bookkeeping, never correctness;
* **self-healing** — a periodic reconcile scan re-enqueues any task
  that is not done yet has no token, no lease and no pending backoff
  (the crash windows: a worker killed between claim and heartbeat, a
  broker killed between unlink and requeue);
* **aggregation** — rows are folded in grid order into ``rows.jsonl``
  as they land, and exposed as ``broker.raw`` for the
  :class:`~repro.exp.runner.Runner`'s farm path.

Determinism: tasks are seeded specs, rows are canonicalised through the
same JSON round-trip as ``Runner._record``, and aggregation follows grid
index — so an interrupted-and-resumed farm run is bit-identical to an
uninterrupted serial run.

``python -m repro.farm.broker <root>`` serves a previously initialised
farm directory (used by the crash-resume tests to SIGKILL a live
broker); ``repro farm serve`` is the user-facing entry.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from ..exp.cache import ResultCache
from ..exp.spec import TaskSpec
from ..harness.sweep import merge_row
from ..obs.trace import NULL_TRACE
from .layout import FarmLayout

__all__ = ["Broker", "FarmError", "run_farm", "farm_status"]

DEFAULT_LEASE_TTL = 15.0
DEFAULT_BACKOFF = 0.25
MAX_BACKOFF = 30.0
DEFAULT_POLL = 0.05
RECONCILE_EVERY = 1.0


class FarmError(RuntimeError):
    """The farm directory disagrees with the grid being served."""


class _Aggregator:
    """Streams rows to ``rows.jsonl`` in grid order as they land."""

    def __init__(self, layout: FarmLayout, params: Dict[int, dict]):
        self._layout = layout
        self._params = params
        self._pending: Dict[int, dict] = {}
        self._next = 0
        self._fh = open(layout.rows_path, "w", encoding="utf-8")

    def add(self, index: int, row: dict) -> None:
        self._pending[index] = row
        while self._next in self._pending:
            raw = self._pending.pop(self._next)
            merged = merge_row(dict(self._params[self._next]), raw)
            self._fh.write(json.dumps(merged) + "\n")
            self._fh.flush()
            self._next += 1

    def close(self) -> None:
        self._fh.close()


class Broker:
    """Owns one farm directory: queue, leases, budgets, aggregation.

    Parameters
    ----------
    root:
        The farm directory.  Passing ``tasks`` initialises it (or
        resumes if it already holds the *same* grid — verified by
        content keys); ``tasks=None`` resumes from disk alone.
    cache:
        Shared :class:`ResultCache` used as the result store; ``None``
        uses (or creates) ``<root>/results``.
    trace / t0:
        Optional :class:`~repro.obs.trace.TraceBus` for ``farm.*``
        events; ``t0`` is the monotonic origin for their wall-clock
        ``t`` field (so events share the owning runner's clock).
    max_failures:
        Failed attempts (raises + lease expiries) tolerated per task
        before the farm fails, mirroring ``Runner(retries=...)``.
    lease_ttl / backoff / poll:
        Heartbeat deadline horizon, base requeue delay, and scan
        interval, in seconds.

    After :meth:`run`: ``raw`` maps grid index to canonical row;
    ``executed`` counts ``done`` journal records observed this run,
    ``store_hits`` counts rows already in the store at serve time, and
    ``requeued`` counts requeues issued this run.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        tasks: Optional[Sequence[TaskSpec]] = None,
        cache: Optional[ResultCache] = None,
        trace=None,
        t0: Optional[float] = None,
        max_failures: int = 1,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        backoff: float = DEFAULT_BACKOFF,
        poll: float = DEFAULT_POLL,
    ):
        self.layout = FarmLayout(root)
        self.trace = NULL_TRACE if trace is None else trace
        self._t0 = time.monotonic() if t0 is None else t0
        self.max_failures = max_failures
        self.lease_ttl = lease_ttl
        self.backoff = backoff
        self.poll = poll

        self.raw: Dict[int, dict] = {}
        self.executed = 0
        self.store_hits = 0
        self.requeued = 0

        self._keys: Dict[int, str] = {}
        self._params: Dict[int, dict] = {}
        self._failures: Dict[int, int] = {}
        self._delayed: Dict[int, float] = {}  # index -> monotonic due time
        self._last_reason: Dict[int, str] = {}
        self._done: set = set()
        self._journal_offset = 0
        self._lease_grace: Dict[int, float] = {}  # unparsable-lease grace
        self._aggregator: Optional[_Aggregator] = None

        external = cache is not None
        self.store = cache if external else ResultCache(self.layout.results_dir)
        if tasks is not None:
            self._serve(tasks, external)
        else:
            self._resume()

    # -- initialisation -----------------------------------------------
    def _serve(self, tasks: Sequence[TaskSpec], external: bool) -> None:
        tasks = sorted(tasks, key=lambda t: t.index)
        keys = [self.store.key(task) for task in tasks]
        manifest = self.layout.read_manifest()
        if manifest is not None:
            if manifest.get("keys") != keys:
                raise FarmError(
                    f"farm root {self.layout.root} contains a different "
                    f"grid ({manifest.get('tasks')} task(s), keys differ); "
                    "point the farm at a fresh directory or resume with "
                    "the original grid"
                )
            # Same grid: this is a resume with the specs in hand.
            for task, key in zip(tasks, keys):
                self._keys[task.index] = key
                self._params[task.index] = dict(task.spec.params)
            self._replay_journal()
            self.layout.clear_markers()
            return
        self.layout.create_dirs()
        store_path = (str(pathlib.Path(self.store.root).resolve())
                      if external else None)
        self.layout.write_manifest(keys, store=store_path)
        for task, key in zip(tasks, keys):
            self._keys[task.index] = key
            self._params[task.index] = dict(task.spec.params)
            self.layout.write_task(task, key)
            self.layout.enqueue(task.index, attempt=1)
            self.layout.journal("enqueue", task=task.index, attempt=1,
                                key=key)
            self._emit("farm.enqueue", task=task.index, attempt=1, key=key)

    def _resume(self) -> None:
        manifest = self.layout.read_manifest()
        if manifest is None:
            raise FarmError(
                f"{self.layout.root} is not an initialised farm directory "
                "(no readable manifest); serve a grid into it first"
            )
        for index, key in enumerate(manifest["keys"]):
            self._keys[index] = key
            entry = self.layout.read_task(index)
            self._params[index] = dict(entry["task"].spec.params)
        self._replay_journal()
        self.layout.clear_markers()

    def _replay_journal(self) -> None:
        """Restore failure budgets from the journal (backoffs restart)."""
        records, self._journal_offset = self.layout.read_journal(0)
        for record in records:
            if record.get("op") in ("failed", "expired"):
                task = record.get("task")
                if isinstance(task, int):
                    self._failures[task] = self._failures.get(task, 0) + 1
                    reason = record.get("reason")
                    if isinstance(reason, str):
                        self._last_reason[task] = reason

    # -- main loop -----------------------------------------------------
    def run(self) -> List[dict]:
        """Drive the farm to completion; returns merged rows in grid
        order.

        Raises :exc:`~repro.exp.runner.TaskError` when a task exhausts
        its failure budget (after marking the farm ``FAILED`` so workers
        stop).
        """
        total = len(self._keys)
        self._aggregator = _Aggregator(self.layout, self._params)
        try:
            self._scan_store(initial=True)
            self._emit("farm.serve", tasks=total, done=len(self._done),
                       leased=len(self.layout.leases()),
                       queued=len(self.layout.queued_tasks()),
                       delayed=len(self._delayed))
            start = time.monotonic()
            last_reconcile = 0.0
            while len(self._done) < total:
                self._drain_journal()
                self._expire_leases()
                self._release_delayed()
                now = time.monotonic()
                if now - last_reconcile >= RECONCILE_EVERY:
                    self._reconcile()
                    last_reconcile = now
                if len(self._done) < total:
                    time.sleep(self.poll)
        finally:
            self._aggregator.close()
            self._aggregator = None
        self.layout.journal("complete", rows=total, executed=self.executed,
                            store_hits=self.store_hits)
        self.layout.mark("done")
        wall = time.monotonic() - start
        self._emit("farm.complete", rows=total, executed=self.executed,
                   store_hits=self.store_hits, wall=wall)
        return [merge_row(dict(self._params[index]), self.raw[index])
                for index in sorted(self._keys)]

    # -- completion ----------------------------------------------------
    def _scan_store(self, initial: bool = False) -> None:
        """Mark every task whose row is already in the store as done."""
        for index in self._keys:
            if self._complete(index) and initial:
                self.store_hits += 1

    def _complete(self, index: int) -> bool:
        """Load the row for ``index`` from the store; done iff it reads."""
        if index in self._done:
            return True
        row = self.store.load(self._keys[index])
        if row is None:
            return False
        self.raw[index] = row
        self._done.add(index)
        self._delayed.pop(index, None)
        if self._aggregator is not None:
            self._aggregator.add(index, row)
        return True

    # -- journal consumption ------------------------------------------
    def _drain_journal(self) -> None:
        records, self._journal_offset = self.layout.read_journal(
            self._journal_offset)
        for record in records:
            op = record.get("op")
            task = record.get("task")
            if not isinstance(task, int) or task not in self._keys:
                continue
            worker = str(record.get("worker", "?"))
            if op == "lease":
                self._emit("farm.lease", task=task, worker=worker,
                           attempt=int(record.get("attempt", 1)))
            elif op == "done":
                if self._complete(task):
                    self.executed += 1
                    self._emit("farm.task_done", task=task, worker=worker,
                               wall=float(record.get("wall", 0.0)),
                               key=self._keys[task])
                # else: journal says done but the store entry is
                # unreadable — reconcile will requeue it.
            elif op == "failed":
                self._count_failure(
                    task, str(record.get("reason", "unknown")))
                self._emit("farm.task_failed", task=task, worker=worker,
                           reason=str(record.get("reason", "unknown")),
                           failures=self._failures[task])

    # -- failure handling ---------------------------------------------
    def _count_failure(self, index: int, reason: str) -> None:
        self._failures[index] = self._failures.get(index, 0) + 1
        self._last_reason[index] = reason
        failures = self._failures[index]
        if failures > self.max_failures:
            self._exhaust(index, failures)
        delay = min(self.backoff * (2 ** (failures - 1)), MAX_BACKOFF)
        self._delayed[index] = time.monotonic() + delay
        self.layout.journal("requeue", task=index, failures=failures,
                            delay=delay)
        self._emit("farm.requeue", task=index, failures=failures,
                   delay=delay)

    def _exhaust(self, index: int, failures: int) -> None:
        from ..exp.runner import TaskError

        self.layout.journal("exhausted", task=index, failures=failures)
        self._emit("farm.exhausted", task=index, failures=failures)
        reason = self._last_reason.get(index, "unknown")
        self.layout.mark("failed",
                         f"task {index} failed {failures} time(s): {reason}\n")
        entry = self.layout.read_task(index)
        raise TaskError(entry["task"], failures, RuntimeError(reason))

    # -- lease expiry --------------------------------------------------
    def _expire_leases(self) -> None:
        now = time.time()
        mono = time.monotonic()
        live = set()
        for index, record in self.layout.leases():
            live.add(index)
            deadline = record.get("deadline")
            if not isinstance(deadline, (int, float)):
                # Claim-to-rewrite race window or torn heartbeat: grant
                # one ttl of grace from first sighting.
                grace = self._lease_grace.setdefault(index,
                                                     mono + self.lease_ttl)
                if mono < grace:
                    continue
            elif deadline > now:
                self._lease_grace.pop(index, None)
                continue
            self._lease_grace.pop(index, None)
            if (self._complete(index)
                    or index in self.layout.queued_tasks()
                    or index in self._delayed):
                # Stale lease for a task that moved on (e.g. a worker
                # journalled "failed" then died before releasing): drop
                # it without charging a second failure.
                self.layout.release_lease(index)
                continue
            worker = record.get("worker")
            self.layout.release_lease(index)
            self.layout.journal("expired", task=index, worker=worker,
                                reason="lease expired")
            self._emit("farm.lease_expired", task=index,
                       worker=worker if isinstance(worker, str) else None,
                       failures=self._failures.get(index, 0) + 1)
            self._count_failure(index, "lease expired")
        for index in list(self._lease_grace):
            if index not in live:
                del self._lease_grace[index]

    # -- requeue / reconcile ------------------------------------------
    def _release_delayed(self) -> None:
        now = time.monotonic()
        for index, due in list(self._delayed.items()):
            if due > now:
                continue
            del self._delayed[index]
            if self._complete(index):
                continue
            attempt = self._failures.get(index, 0) + 1
            self.layout.enqueue(index, attempt=attempt)
            self.layout.journal("enqueue", task=index, attempt=attempt,
                                key=self._keys[index])
            self._emit("farm.enqueue", task=index, attempt=attempt,
                       key=self._keys[index])
            self.requeued += 1

    def _reconcile(self) -> None:
        """Re-enqueue tasks lost in crash windows.

        A task that is not done, holds no queue token, no lease and no
        pending backoff is unreachable — nothing will ever run it.  That
        state only arises when a process died between two file
        operations (claim→heartbeat, release→requeue); recreating the
        token is always safe because execution is idempotent.
        """
        queued = set(self.layout.queued_tasks())
        leased = {index for index, _ in self.layout.leases()}
        for index in self._keys:
            if (index in self._done or index in queued or index in leased
                    or index in self._delayed):
                continue
            if self._complete(index):
                continue
            attempt = self._failures.get(index, 0) + 1
            self.layout.enqueue(index, attempt=attempt)
            self.layout.journal("enqueue", task=index, attempt=attempt,
                                key=self._keys[index])
            self._emit("farm.enqueue", task=index, attempt=attempt,
                       key=self._keys[index])

    # -- events --------------------------------------------------------
    def _emit(self, ev: str, **fields) -> None:
        if self.trace.enabled:
            self.trace.emit(ev, time.monotonic() - self._t0, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Broker({str(self.layout.root)!r}, tasks={len(self._keys)}, "
                f"done={len(self._done)})")


# ----------------------------------------------------------------------
def spawn_worker(
    root: Union[str, os.PathLike],
    worker_id: Optional[str] = None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    poll: float = DEFAULT_POLL,
) -> subprocess.Popen:
    """Spawn one local worker subprocess against ``root``.

    The child runs ``python -m repro.farm.worker`` with the parent's
    ``sys.path`` as ``PYTHONPATH`` so pickled tasks referencing modules
    outside ``site-packages`` (e.g. test modules) still resolve.
    """
    cmd = [sys.executable, "-m", "repro.farm.worker", str(root),
           "--lease-ttl", str(lease_ttl), "--poll", str(poll)]
    if worker_id is not None:
        cmd += ["--id", worker_id]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    # Silence the worker's completion line (stderr stays visible for
    # real trouble); ``repro farm work`` run by hand keeps its stdout.
    return subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)


def run_farm(
    tasks: Sequence[TaskSpec],
    root: Union[str, os.PathLike],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    trace=None,
    t0: Optional[float] = None,
    max_failures: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    backoff: float = DEFAULT_BACKOFF,
    poll: float = DEFAULT_POLL,
) -> Broker:
    """Serve ``tasks`` into ``root``, run ``workers`` local workers, and
    drive the broker to completion.  Returns the finished broker.

    This is the :class:`~repro.exp.runner.Runner`'s farm path; remote
    workers started separately with ``repro farm work`` (or
    ``python -m repro.farm.worker``) join the same run simply by
    pointing at the same directory.
    """
    broker = Broker(root, tasks=tasks, cache=cache, trace=trace, t0=t0,
                    max_failures=max_failures, lease_ttl=lease_ttl,
                    backoff=backoff, poll=poll)
    procs: List[subprocess.Popen] = []
    try:
        for i in range(max(0, workers)):
            procs.append(spawn_worker(root, worker_id=f"local-{i}",
                                      lease_ttl=lease_ttl, poll=poll))
        broker.run()
    finally:
        # Workers exit on the DONE/FAILED marker; give them a moment,
        # then insist.
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
    return broker


def farm_status(root: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Snapshot of a farm directory for ``repro farm status``."""
    layout = FarmLayout(root)
    manifest = layout.read_manifest()
    if manifest is None:
        raise FarmError(f"{root} is not an initialised farm directory")
    keys = manifest["keys"]
    store = ResultCache(layout.store_root())
    done = sum(1 for key in keys if store.contains(key))
    failures: Dict[int, int] = {}
    executed = 0
    for record in layout.iter_journal():
        op = record.get("op")
        task = record.get("task")
        if op in ("failed", "expired") and isinstance(task, int):
            failures[task] = failures.get(task, 0) + 1
        elif op == "done":
            executed += 1
    return {
        "tasks": len(keys),
        "done": done,
        "queued": len(layout.queued_tasks()),
        "leased": len(layout.leases()),
        "executed": executed,
        "failures": sum(failures.values()),
        "state": layout.finished() or "running",
    }


def main(argv=None) -> int:  # pragma: no cover - exercised via subprocess
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.farm.broker",
        description="Resume serving an initialised farm directory.",
    )
    parser.add_argument("root", help="farm directory")
    parser.add_argument("--workers", type=int, default=0,
                        help="local worker processes to spawn (default 0: "
                        "broker only; workers join from elsewhere)")
    parser.add_argument("--max-failures", type=int, default=1)
    parser.add_argument("--lease-ttl", type=float, default=DEFAULT_LEASE_TTL)
    parser.add_argument("--backoff", type=float, default=DEFAULT_BACKOFF)
    parser.add_argument("--poll", type=float, default=DEFAULT_POLL)
    args = parser.parse_args(argv)
    broker = Broker(args.root, max_failures=args.max_failures,
                    lease_ttl=args.lease_ttl, backoff=args.backoff,
                    poll=args.poll)
    procs = [spawn_worker(args.root, worker_id=f"local-{i}",
                          lease_ttl=args.lease_ttl, poll=args.poll)
             for i in range(max(0, args.workers))]
    try:
        rows = broker.run()
    finally:
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    print(f"farm complete: {len(rows)} row(s), executed={broker.executed}, "
          f"store_hits={broker.store_hits}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
