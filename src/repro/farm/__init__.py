"""Distributed, resumable experiment farm.

The full controller-zoo × topology × fault matrix is 10^5–10^6 cacheable
points — beyond one ``ProcessPoolExecutor``.  The farm splits the
:class:`~repro.exp.runner.Runner`'s execution layer into three pieces
that survive crashes independently:

* a **broker** (:class:`~repro.farm.broker.Broker`) owns a persistent
  work queue under one *farm directory*: pickled task files, claim
  tokens, a lease table with heartbeat/expiry, and an append-only
  journal used for failure budgets and observability;
* **workers** (:mod:`repro.farm.worker`, spawnable on any host that can
  see the farm directory) lease tasks via atomic rename, execute them
  through the existing :func:`~repro.exp.spec.execute_task`, and publish
  rows through the shared content-addressed
  :class:`~repro.exp.cache.ResultCache` — already atomic and
  corrupt-tolerant, so it is the farm's result store for free;
* a **streaming aggregator** folds rows in deterministic grid order as
  they land.

Because every task is a seeded, deterministic simulation and the result
store is content-addressed, duplicate execution is harmless and
*completion authority is cache presence*: a grid interrupted at any
point (worker SIGKILL, broker SIGKILL, power loss) and resumed over the
same directory produces rows bit-identical to an uninterrupted serial
:class:`~repro.exp.runner.Runner` run.  See ``docs/RUNNER.md``.
"""

from .broker import Broker, FarmError, farm_status, run_farm
from .layout import FarmLayout

__all__ = ["Broker", "FarmError", "FarmLayout", "farm_status", "run_farm",
           "work"]


def __getattr__(name):
    # Lazy: ``python -m repro.farm.worker`` (the worker entry point)
    # imports this package first, and an eager ``from .worker import
    # work`` here would trip runpy's double-import warning.
    if name == "work":
        from .worker import work

        return work
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
