"""Small shared utilities."""

from .intervals import IntervalSet

__all__ = ["IntervalSet"]
