"""Disjoint integer interval sets.

Used for SACK bookkeeping on both sides of a TCP connection: the receiver
tracks the out-of-order sequence ranges it holds (to generate SACK blocks),
and the sender keeps the scoreboard of SACKed sequence numbers.

Intervals are half-open ``[start, end)`` over integers, kept sorted and
non-adjacent (touching intervals are merged).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterator, List, Tuple

__all__ = ["IntervalSet"]


class IntervalSet:
    """A sorted set of disjoint half-open integer intervals."""

    __slots__ = ("_starts", "_ends", "_count")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._count = 0  # total integers covered

    # ------------------------------------------------------------------
    def add(self, start: int, end: int = None) -> None:
        """Insert ``[start, end)`` (a single point if ``end`` is omitted),
        merging with any overlapping or adjacent intervals."""
        if end is None:
            end = start + 1
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        starts, ends = self._starts, self._ends
        # Find all intervals that overlap or touch [start, end).
        lo = bisect_left(ends, start)          # first with end >= start
        hi = bisect_right(starts, end)         # last with start <= end
        if lo < hi:
            start = min(start, starts[lo])
            end = max(end, ends[hi - 1])
            removed = sum(ends[i] - starts[i] for i in range(lo, hi))
            del starts[lo:hi]
            del ends[lo:hi]
            self._count -= removed
        starts.insert(lo, start)
        ends.insert(lo, end)
        self._count += end - start

    def discard_below(self, cutoff: int) -> None:
        """Remove all integers < ``cutoff`` (cumulative-ACK advance)."""
        starts, ends = self._starts, self._ends
        idx = bisect_right(ends, cutoff)  # intervals entirely below cutoff
        if idx:
            self._count -= sum(ends[i] - starts[i] for i in range(idx))
            del starts[:idx]
            del ends[:idx]
        if starts and starts[0] < cutoff:
            self._count -= cutoff - starts[0]
            starts[0] = cutoff

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self._count = 0

    # ------------------------------------------------------------------
    def __contains__(self, value: int) -> bool:
        idx = bisect_right(self._starts, value) - 1
        return idx >= 0 and value < self._ends[idx]

    def __len__(self) -> int:
        """Total count of integers covered."""
        return self._count

    def __bool__(self) -> bool:
        return bool(self._starts)

    @property
    def num_intervals(self) -> int:
        return len(self._starts)

    def intervals(self) -> Iterator[Tuple[int, int]]:
        return zip(self._starts, self._ends)

    def first_gap_after(self, value: int) -> int:
        """Smallest integer >= ``value`` not covered by the set."""
        idx = bisect_right(self._starts, value) - 1
        if idx >= 0 and value < self._ends[idx]:
            return self._ends[idx]
        return value

    def max_covered(self) -> int:
        """One past the largest covered integer (0 if empty)."""
        return self._ends[-1] if self._ends else 0

    def interval_containing(self, value: int) -> Tuple[int, int]:
        """The interval covering ``value`` (raises KeyError if none)."""
        idx = bisect_right(self._starts, value) - 1
        if idx >= 0 and value < self._ends[idx]:
            return self._starts[idx], self._ends[idx]
        raise KeyError(f"{value} not covered")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(f"[{s},{e})" for s, e in self.intervals())
        return f"IntervalSet({spans})"
