"""Fault injection: seeded, reproducible network perturbations.

See ``docs/CHECKING.md``.  Fault schedules are declared as
:class:`FaultSpec` values (or preset names / plain dicts — see
:func:`resolve_faults`) and bound to live components with
:func:`arm_faults`; each injector draws from its own RNG derived from
``(sim.seed, kind, target, start)``, so faulted runs are bit-identical
across repeats and the simulation's main random stream is untouched.
"""

from .faults import (
    AckDropFault,
    Fault,
    LinkFlapFault,
    LossBurstFault,
    ReorderFault,
    SubflowKillFault,
    arm_faults,
)
from .spec import FAULT_KINDS, FAULT_PRESETS, FaultSpec, resolve_faults

__all__ = [
    "AckDropFault",
    "FAULT_KINDS",
    "FAULT_PRESETS",
    "Fault",
    "FaultSpec",
    "LinkFlapFault",
    "LossBurstFault",
    "ReorderFault",
    "SubflowKillFault",
    "arm_faults",
    "resolve_faults",
]
