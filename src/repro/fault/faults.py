"""Fault injectors: seeded, reproducible network perturbations.

Each fault binds a :class:`~repro.fault.spec.FaultSpec` to one concrete
component (queue, pipe or sender) found by name in the simulation's
component registry.  Injection hooks into the element's ``intercept``
slot (queues, pipes) or wraps ``receive`` (senders) — the data path is
untouched until a fault actually arms.

Reproducibility: every fault draws from its **own** RNG, seeded from
``(sim.seed, kind, target, start)``.  Injected randomness therefore never
perturbs the simulation's main random stream — a faulted run differs from
the clean run only through the fault's actual effects, and two runs with
identical seeds produce bit-identical fault schedules (the property the
``repro check`` determinism test pins down).

Tracing: state transitions emit ``fault.fire`` (armed schedules emit
``fault.armed``); per-packet kills are ordinary ``pkt.drop`` records with
``kind='fault'``, so drop accounting in trace post-processing keeps
working unchanged.
"""

from __future__ import annotations

import random
from fnmatch import fnmatch
from typing import Any, List, Optional, Tuple

from ..net.packet import AckPacket, DataPacket, Packet
from ..net.pipe import Pipe
from ..net.queue import DropTailQueue
from ..net.route import Route
from ..sim.simulation import Simulation
from ..tcp.sender import TcpSender
from .spec import FaultSpec

__all__ = [
    "Fault",
    "LinkFlapFault",
    "LossBurstFault",
    "ReorderFault",
    "SubflowKillFault",
    "AckDropFault",
    "arm_faults",
]


class Fault:
    """Base class: seeded RNG, tracing helpers, intercept chaining."""

    def __init__(self, sim: Simulation, spec: FaultSpec, target: Any,
                 trace=None):
        self.sim = sim
        self.spec = spec
        self.target = target
        self.target_name = getattr(target, "name", "") or repr(target)
        self.trace = sim.trace if trace is None else trace
        # Derived stream: independent of sim.rng, identical across runs
        # with the same (seed, spec, target).
        self.rng = random.Random(
            f"{sim.seed}:{spec.kind}:{self.target_name}:{spec.start}"
        )
        #: Packets affected so far (drops, reorders, kills).
        self.fires = 0

    # -- lifecycle ------------------------------------------------------
    def arm(self) -> None:
        """Announce the fault and schedule its effects."""
        if self.trace.enabled:
            self.trace.emit(
                "fault.armed",
                self.sim.now,
                fault=self.spec.kind,
                target=self.target_name,
                start=self.spec.start,
            )
        self._schedule()

    def _schedule(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # -- helpers --------------------------------------------------------
    def _chain_intercept(self, mine) -> None:
        """Install ``mine`` on the target's intercept slot, after any
        interceptor already present (first consumer wins)."""
        previous = self.target.intercept
        if previous is None:
            self.target.intercept = mine
        else:
            def chained(packet, _prev=previous, _mine=mine):
                return _prev(packet) or _mine(packet)
            self.target.intercept = chained

    def _fire(self, action: str, seq: Optional[int] = None,
              count: Optional[int] = None) -> None:
        if self.trace.enabled:
            fields = dict(
                fault=self.spec.kind, target=self.target_name, action=action
            )
            if seq is not None:
                fields["seq"] = seq
            if count is not None:
                fields["count"] = count
            self.trace.emit("fault.fire", self.sim.now, **fields)

    def _trace_drop(self, packet: Packet, seq: Optional[int]) -> None:
        if self.trace.enabled:
            self.trace.emit(
                "pkt.drop",
                self.sim.now,
                elem=self.target_name,
                kind="fault",
                flow=getattr(getattr(packet, "flow", None), "name", None),
                seq=seq,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.target_name!r}, "
            f"start={self.spec.start}, fires={self.fires})"
        )


class LinkFlapFault(Fault):
    """Take a link down and up repeatedly.

    While down, every data packet arriving at the target queue is dropped
    (ACKs on the reverse path are unaffected — the model is an outage of
    the forward buffer).  Parameters: ``down_for`` (seconds per outage),
    ``period`` (outage start-to-start spacing), ``repeats``.
    """

    def __init__(self, sim, spec, target, trace=None):
        super().__init__(sim, spec, target, trace=trace)
        self.down = False
        self._dropped_this_outage = 0
        params = spec.params
        self.down_for = float(params.get("down_for", 2.0))
        self.period = float(params.get("period", self.down_for * 3.0))
        self.repeats = int(params.get("repeats", 1))
        if self.down_for <= 0:
            raise ValueError(f"down_for must be > 0, got {self.down_for!r}")
        if self.period < self.down_for:
            raise ValueError(
                f"period {self.period!r} shorter than down_for "
                f"{self.down_for!r}: outages would overlap"
            )

    def _schedule(self) -> None:
        self._chain_intercept(self._intercept)
        for k in range(self.repeats):
            base = self.spec.start + k * self.period
            self.sim.schedule_at(base, self._go_down)
            self.sim.schedule_at(base + self.down_for, self._go_up)

    def _go_down(self) -> None:
        self.down = True
        self._dropped_this_outage = 0
        self._fire("down")

    def _go_up(self) -> None:
        self.down = False
        self._fire("up", count=self._dropped_this_outage)

    def _intercept(self, packet: Packet) -> bool:
        if not self.down or not isinstance(packet, DataPacket):
            return False
        self.fires += 1
        self._dropped_this_outage += 1
        self._trace_drop(packet, getattr(packet, "seq", None))
        return True


class LossBurstFault(Fault):
    """Random loss with probability ``prob`` during a window of
    ``duration`` seconds from ``start`` (a burst of non-congestion loss on
    a queue or pipe)."""

    def __init__(self, sim, spec, target, trace=None):
        super().__init__(sim, spec, target, trace=trace)
        self.active = False
        self._dropped_this_burst = 0
        params = spec.params
        self.duration = float(params.get("duration", 3.0))
        self.prob = float(params.get("prob", 0.3))
        if not 0.0 < self.prob <= 1.0:
            raise ValueError(f"prob must be in (0, 1], got {self.prob!r}")

    def _schedule(self) -> None:
        self._chain_intercept(self._intercept)
        self.sim.schedule_at(self.spec.start, self._begin)
        self.sim.schedule_at(self.spec.start + self.duration, self._end)

    def _begin(self) -> None:
        self.active = True
        self._dropped_this_burst = 0
        self._fire("burst_start")

    def _end(self) -> None:
        self.active = False
        self._fire("burst_end", count=self._dropped_this_burst)

    def _intercept(self, packet: Packet) -> bool:
        if not self.active or not isinstance(packet, DataPacket):
            return False
        if self.rng.random() >= self.prob:
            return False
        self.fires += 1
        self._dropped_this_burst += 1
        self._trace_drop(packet, getattr(packet, "seq", None))
        return True


class ReorderFault(Fault):
    """Delay a fraction ``prob`` of data packets by up to ``extra_delay``
    seconds, so they arrive behind packets sent after them.

    The delayed packet is re-presented to the same element after the extra
    delay (with a bypass marker so it is not intercepted twice); nothing
    is lost, so conservation invariants still hold — this fault exercises
    the SACK scoreboard and the connection-level reassembler instead.
    Active from ``start``; bounded by an optional ``duration``.
    """

    def __init__(self, sim, spec, target, trace=None):
        super().__init__(sim, spec, target, trace=trace)
        params = spec.params
        self.prob = float(params.get("prob", 0.1))
        self.extra_delay = float(params.get("extra_delay", 0.02))
        self.duration = params.get("duration")
        if not 0.0 < self.prob <= 1.0:
            raise ValueError(f"prob must be in (0, 1], got {self.prob!r}")
        if self.extra_delay <= 0:
            raise ValueError(
                f"extra_delay must be > 0, got {self.extra_delay!r}"
            )
        self._bypass: Optional[Packet] = None

    def _schedule(self) -> None:
        self._chain_intercept(self._intercept)

    def _active(self) -> bool:
        if self.sim.now < self.spec.start:
            return False
        if self.duration is not None:
            return self.sim.now < self.spec.start + float(self.duration)
        return True

    def _intercept(self, packet: Packet) -> bool:
        if packet is self._bypass:
            self._bypass = None
            return False
        if not self._active() or not isinstance(packet, DataPacket):
            return False
        if self.rng.random() >= self.prob:
            return False
        self.fires += 1
        delay = self.extra_delay * self.rng.random()
        self._fire("reorder", seq=getattr(packet, "seq", None))
        self.sim.schedule_in(delay, self._redeliver, packet)
        return True

    def _redeliver(self, packet: Packet) -> None:
        self._bypass = packet
        try:
            self.target.receive(packet)
        finally:
            self._bypass = None


class SubflowKillFault(Fault):
    """Take one sender's path down at ``start`` (path failure); optionally
    bring it back ``revive_after`` seconds later (path recovery).

    The fault signals ``path_down()`` / ``path_up()`` rather than bare
    ``stop()`` / ``start()``: a plain sender still just freezes, but a
    multipath subflow forwards the signal to its connection, so an attached
    :class:`repro.pathmgr.PathManager` sees the failure, retires the
    subflow (reinjecting stranded data) and fails over — §5's handover
    experiment, composed from a fault plus a policy.
    """

    def __init__(self, sim, spec, target, trace=None):
        super().__init__(sim, spec, target, trace=trace)
        self.revive_after = spec.params.get("revive_after")

    def _schedule(self) -> None:
        self.sim.schedule_at(self.spec.start, self._kill)
        if self.revive_after is not None:
            self.sim.schedule_at(
                self.spec.start + float(self.revive_after), self._revive
            )

    def _kill(self) -> None:
        self.fires += 1
        self.target.path_down(reason="fault")
        self._fire("kill")

    def _revive(self) -> None:
        self.target.path_up(reason="fault")
        self._fire("revive")


class AckDropFault(Fault):
    """Drop a fraction ``prob`` of one sender's incoming ACKs for
    ``duration`` seconds from ``start`` (a lossy reverse path).

    Cumulative ACKs make this safe — a later ACK covers the dropped one —
    but it stresses RTT estimation and timer logic.  Implemented by
    wrapping the sender's ``receive`` (senders are plain objects; queues
    and pipes use the ``intercept`` slot instead because they are
    ``__slots__``-constrained).
    """

    def __init__(self, sim, spec, target, trace=None):
        super().__init__(sim, spec, target, trace=trace)
        self.active = False
        self._dropped_this_window = 0
        params = spec.params
        self.duration = float(params.get("duration", 3.0))
        self.prob = float(params.get("prob", 0.25))
        if not 0.0 < self.prob <= 1.0:
            raise ValueError(f"prob must be in (0, 1], got {self.prob!r}")

    def _schedule(self) -> None:
        original = self.target.receive
        fault = self

        def guarded_receive(ack):
            if (
                fault.active
                and isinstance(ack, AckPacket)
                and fault.rng.random() < fault.prob
            ):
                fault.fires += 1
                fault._dropped_this_window += 1
                fault._trace_drop(ack, getattr(ack, "ack_seq", None))
                return
            original(ack)

        self.target.receive = guarded_receive
        self.sim.schedule_at(self.spec.start, self._begin)
        self.sim.schedule_at(self.spec.start + self.duration, self._end)

    def _begin(self) -> None:
        self.active = True
        self._dropped_this_window = 0
        self._fire("window_start")

    def _end(self) -> None:
        self.active = False
        self._fire("window_end", count=self._dropped_this_window)


#: kind -> (fault class, acceptable target component types)
_KIND_MAP = {
    "link_flap": (LinkFlapFault, (DropTailQueue,)),
    "loss_burst": (LossBurstFault, (DropTailQueue, Pipe)),
    "reorder": (ReorderFault, (DropTailQueue, Pipe)),
    "subflow_kill": (SubflowKillFault, (TcpSender,)),
    "ack_drop": (AckDropFault, (TcpSender,)),
}


def _candidates(sim: Simulation, types: Tuple[type, ...]) -> List[Tuple[str, Any]]:
    by_name = {}
    on_path = set()
    for component in sim.components:
        if isinstance(component, Route):
            on_path.update(id(e) for e in component.elements)
        elif isinstance(component, types):
            name = getattr(component, "name", "")
            if name:
                by_name.setdefault(name, component)
    # Rank forward-path elements first, then queues before pipes, then by
    # name: a bare "*" should fault a link buffer that actually carries
    # data, not an idle reverse-twin queue or a reverse-path ACK pipe
    # (whose names often sort first).
    return sorted(
        by_name.items(),
        key=lambda item: (
            id(item[1]) not in on_path,
            not isinstance(item[1], DropTailQueue),
            item[0],
        ),
    )


def arm_faults(
    sim: Simulation, specs: List[FaultSpec], trace=None
) -> List[Fault]:
    """Bind each spec to its target component(s) and arm the faults.

    Targets are matched by ``fnmatch`` glob over component names, in
    sorted name order for determinism; the first match is used unless the
    spec sets ``params["scope"] = "all"``.  Raises :class:`ValueError`
    when a spec matches nothing (listing what was available), because a
    silently unarmed fault would make a "fault tolerated" result
    meaningless.
    """
    armed: List[Fault] = []
    for spec in specs:
        cls, types = _KIND_MAP[spec.kind]
        candidates = _candidates(sim, types)
        matches = [
            (name, comp) for name, comp in candidates
            if fnmatch(name, spec.target)
        ]
        if not matches:
            available = ", ".join(name for name, _ in candidates) or "(none)"
            raise ValueError(
                f"fault {spec.kind!r} target {spec.target!r} matches no "
                f"component; eligible components: {available}"
            )
        if spec.params.get("scope") != "all":
            matches = matches[:1]
        for _, component in matches:
            fault = cls(sim, spec, component, trace=trace)
            fault.arm()
            armed.append(fault)
    return armed
