"""Declarative fault schedules.

A :class:`FaultSpec` names a fault kind, the element it targets (a glob
over component names), when it starts, and kind-specific parameters.  The
spec layer is deliberately plain data — dicts in, dicts out — so that
fault schedules compose with :class:`~repro.exp.spec.ScenarioSpec`
parameter grids: putting ``{"faults": [spec.to_dict()]}`` in a scenario's
``params`` makes the fault schedule part of the sweep point's identity
(result-cache keys change when the faults do).

:data:`FAULT_PRESETS` provides one ready-made schedule per kind, used by
``repro check --fault <name>`` and handy as a starting point in tests:

========== =============================================================
link_flap   take a link down/up repeatedly (§5's wireless handover story)
loss_burst  a burst of random loss on one element
reorder     delay a fraction of packets so they arrive out of order
subflow_kill stop one subflow's sender mid-run (path failure)
ack_drop    drop a fraction of one sender's ACKs (lossy reverse path)
========== =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

__all__ = ["FaultSpec", "FAULT_KINDS", "FAULT_PRESETS", "resolve_faults"]

#: The fault kinds implemented by :mod:`repro.fault.faults`.
FAULT_KINDS = ("link_flap", "loss_burst", "reorder", "subflow_kill", "ack_drop")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``target`` is an ``fnmatch``-style glob over component names; by
    default the first matching component (in sorted name order, for
    determinism) is faulted, or every match when ``params["scope"]`` is
    ``"all"``.
    """

    kind: str
    target: str = "*"
    start: float = 0.0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.start < 0:
            raise ValueError(f"fault start must be >= 0, got {self.start!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, suitable for ScenarioSpec params / JSON."""
        return {
            "kind": self.kind,
            "target": self.target,
            "start": self.start,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`.  Unknown top-level keys are folded
        into ``params`` so flat dicts like ``{"kind": "loss_burst",
        "prob": 0.5}`` also work."""
        data = dict(data)
        kind = data.pop("kind")
        target = data.pop("target", "*")
        start = data.pop("start", 0.0)
        params = dict(data.pop("params", {}))
        params.update(data)  # remaining flat keys are parameters
        return cls(kind=kind, target=target, start=start, params=params)


#: One representative schedule per kind (timings suit the short monitored
#: runs of ``repro check``; override per-field via ``--param`` / dicts).
FAULT_PRESETS: Dict[str, FaultSpec] = {
    "link_flap": FaultSpec(
        "link_flap", target="*", start=5.0,
        params={"down_for": 2.0, "period": 6.0, "repeats": 2},
    ),
    "loss_burst": FaultSpec(
        "loss_burst", target="*", start=5.0,
        params={"duration": 3.0, "prob": 0.3},
    ),
    "reorder": FaultSpec(
        "reorder", target="*", start=1.0,
        params={"prob": 0.1, "extra_delay": 0.02},
    ),
    "subflow_kill": FaultSpec("subflow_kill", target="*.sf0", start=8.0),
    "ack_drop": FaultSpec(
        "ack_drop", target="*", start=5.0,
        params={"duration": 3.0, "prob": 0.25},
    ),
}

FaultLike = Union[None, str, Dict[str, Any], FaultSpec]


def resolve_faults(value: Union[FaultLike, List[FaultLike]]) -> List[FaultSpec]:
    """Normalise any reasonable fault description to a list of specs.

    Accepts ``None`` (no faults), a preset name, a dict (see
    :meth:`FaultSpec.from_dict`), a :class:`FaultSpec`, or a list mixing
    all of the above.
    """
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        specs: List[FaultSpec] = []
        for item in value:
            specs.extend(resolve_faults(item))
        return specs
    if isinstance(value, FaultSpec):
        return [value]
    if isinstance(value, str):
        preset = FAULT_PRESETS.get(value)
        if preset is None:
            raise ValueError(
                f"unknown fault preset {value!r}; available: "
                f"{', '.join(sorted(FAULT_PRESETS))}"
            )
        return [preset]
    if isinstance(value, dict):
        return [FaultSpec.from_dict(value)]
    raise TypeError(f"cannot interpret {value!r} as a fault spec")
