"""Topology builders for every scenario in the paper's evaluation."""

from .bcube import BCube
from .fattree import FatTree
from .scenarios import (
    SWEEP_GRIDS,
    Scenario,
    build_chain,
    build_shared_bottleneck,
    build_torus,
    build_triangle,
    build_two_links,
)
from .wireless import (
    LinkSchedule,
    WirelessPath,
    build_3g_path,
    build_wifi_path,
)

__all__ = [
    "BCube",
    "FatTree",
    "SWEEP_GRIDS",
    "LinkSchedule",
    "Scenario",
    "WirelessPath",
    "build_3g_path",
    "build_chain",
    "build_shared_bottleneck",
    "build_torus",
    "build_triangle",
    "build_two_links",
    "build_wifi_path",
]
