"""BCube data-center topology (Guo et al., §4 of the paper).

BCube(n, k) has n^(k+1) hosts, each with k+1 interfaces.  A host's address
is a (k+1)-digit base-n number; the level-l switch ``s<l>_<prefix>``
connects the n hosts whose addresses agree everywhere except digit l.
There are (k+1)·n^k switches with n ports each.

The paper simulates BCube with "125 three-interface hosts and 25 five-port
switches" — 125 hosts matches BCube(5, 2), which in the standard
construction has 75 switches in 3 levels (the paper's 25 appears to be a
typo; see DESIGN.md).  Routing provides k+1 parallel paths between any
host pair, built by correcting address digits in rotated level orders
(BCubeRouting); when the digit a rotation starts with is already equal, a
random detour digit keeps the paths edge-disjoint, as in the BCube paper's
altered paths — this matches the paper's "choosing the intermediate nodes
at random when the algorithm needed a choice".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.network import Network
from ..sim.simulation import Simulation

__all__ = ["BCube"]


@dataclass
class BCube:
    """A built BCube(n, k)."""

    sim: Simulation
    net: Network
    n: int
    k: int
    hosts: List[str]

    @classmethod
    def build(
        cls,
        sim: Simulation,
        n: int = 5,
        k: int = 2,
        rate_pps: float = 8333.0,
        delay: float = 1e-4,
        buffer_pkts: int = 100,
    ) -> "BCube":
        if n < 2:
            raise ValueError(f"BCube needs n >= 2, got {n!r}")
        if k < 0:
            raise ValueError(f"BCube needs k >= 0, got {k!r}")
        net = Network(sim)
        levels = k + 1
        num_hosts = n ** levels
        hosts = [cls._host_name(cls._digits(i, n, levels)) for i in range(num_hosts)]
        for i in range(num_hosts):
            digits = cls._digits(i, n, levels)
            for level in range(levels):
                switch = cls._switch_name(level, digits)
                if (cls._host_name(digits), switch) not in net.links:
                    net.add_link(
                        cls._host_name(digits), switch, rate_pps, delay, buffer_pkts
                    )
        return cls(sim=sim, net=net, n=n, k=k, hosts=hosts)

    # ------------------------------------------------------------------
    # Addressing helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _digits(index: int, n: int, levels: int) -> Tuple[int, ...]:
        digits = []
        for _ in range(levels):
            digits.append(index % n)
            index //= n
        return tuple(reversed(digits))  # most-significant digit first

    @staticmethod
    def _host_name(digits: Tuple[int, ...]) -> str:
        return "h" + "".join(str(d) for d in digits)

    @staticmethod
    def _switch_name(level: int, host_digits: Tuple[int, ...]) -> str:
        # A level-l switch is identified by all digits except digit l
        # (digit index counted from the most significant end).
        rest = "".join(
            str(d) for i, d in enumerate(host_digits) if i != level
        )
        return f"s{level}_{rest}"

    def host_digits(self, host: str) -> Tuple[int, ...]:
        return tuple(int(c) for c in host[1:])

    # ------------------------------------------------------------------
    # BCubeRouting
    # ------------------------------------------------------------------
    def route_nodes(
        self,
        src: str,
        dst: str,
        start_level: int,
        rng: Optional[random.Random] = None,
    ) -> List[str]:
        """One BCube path from src to dst correcting digits in the rotated
        level order starting at ``start_level``.

        If the starting digit is already correct, the path detours through a
        random neighbor at that level first (keeping the k+1 paths
        edge-disjoint at the end hosts).
        """
        rng = rng if rng is not None else self.sim.rng
        levels = self.k + 1
        src_digits = list(self.host_digits(src))
        dst_digits = list(self.host_digits(dst))
        if src_digits == dst_digits:
            raise ValueError("src and dst are the same host")
        order = [(start_level + i) % levels for i in range(levels)]
        nodes = [src]
        current = list(src_digits)

        def hop_to(level: int, new_digit: int) -> None:
            switch = self._switch_name(level, tuple(current))
            current[level] = new_digit
            nodes.append(switch)
            nodes.append(self._host_name(tuple(current)))

        detour_level: Optional[int] = None
        first = order[0]
        if current[first] == dst_digits[first]:
            # Altered path: leave through a random wrong digit at the first
            # level, fix it again at the end.
            choices = [d for d in range(self.n) if d != current[first]]
            hop_to(first, rng.choice(choices))
            detour_level = first
        for level in order:
            if level == detour_level:
                continue  # the detoured digit is corrected last
            if current[level] != dst_digits[level]:
                hop_to(level, dst_digits[level])
        if detour_level is not None and current[detour_level] != dst_digits[detour_level]:
            hop_to(detour_level, dst_digits[detour_level])
        if current != dst_digits:
            raise AssertionError("BCube routing failed to reach destination")
        return nodes

    def parallel_paths(
        self, src: str, dst: str, count: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> List[List[str]]:
        """Up to k+1 parallel paths (one per starting level), as used by
        the paper's BCube experiments ("3 edge-disjoint paths")."""
        levels = self.k + 1
        count = levels if count is None else min(count, levels)
        return [
            self.route_nodes(src, dst, start_level=l, rng=rng)
            for l in range(count)
        ]

    def neighbors_by_level(self, host: str) -> List[str]:
        """One neighbor of ``host`` per level (the TP2 destinations: "the
        host's neighbors in the three levels")."""
        digits = list(self.host_digits(host))
        result = []
        for level in range(self.k + 1):
            other = list(digits)
            other[level] = (other[level] + 1) % self.n
            result.append(self._host_name(tuple(other)))
        return result

    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_switches(self) -> int:
        return self.net.graph.number_of_nodes() - self.num_hosts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BCube(n={self.n}, k={self.k}, hosts={self.num_hosts}, "
            f"switches={self.num_switches})"
        )
