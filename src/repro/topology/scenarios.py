"""The small illustrative scenarios of §2–§3 (Figs 1, 2, 3, 5, 7, 9, 14).

Each builder returns a :class:`Scenario` holding the network and the routes
each flow may use; benchmark and test code attaches flows to the routes.
Link rates are in packets/second (use :func:`repro.net.mbps_to_pps` for
Mb/s figures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..net.network import Network
from ..net.route import Route
from ..sim.simulation import Simulation

__all__ = [
    "SWEEP_GRIDS",
    "Scenario",
    "build_shared_bottleneck",
    "build_two_links",
    "build_triangle",
    "build_chain",
    "build_torus",
]


@dataclass
class Scenario:
    """A built topology: the network plus named route sets.

    ``flow_routes`` maps a flow name to the list of routes available to it
    (length 1 for single-path flows).
    """

    sim: Simulation
    net: Network
    flow_routes: Dict[str, List[Route]] = field(default_factory=dict)

    def routes(self, flow: str) -> List[Route]:
        return self.flow_routes[flow]


#: Named parameter grids for the paper's sweep-shaped figures, declared as
#: pure data next to the topologies they exercise.  ``scenario`` names a
#: point function in :data:`repro.exp.grids.SCENARIOS`; ``parameters`` is
#: expanded by :func:`repro.harness.sweep.grid_points` (cartesian product,
#: enumeration order = grid order).  Run one with
#: ``python -m repro sweep --grid <name>`` or
#: :func:`repro.exp.grids.specs_for_grid`.
SWEEP_GRIDS = {
    "fig8_torus": {
        "scenario": "torus_balance",
        "parameters": {
            "algo": ["ewtcp", "mptcp", "coupled"],
            "capacity_c": [1000.0, 500.0, 250.0, 100.0],
        },
        "seed": 9,
        "warmup": 25.0,
        "duration": 60.0,
        "title": "Fig 8: torus loss-rate balance vs capacity of link C",
    },
    "fig16_rtt": {
        "scenario": "rtt_ratio",
        "parameters": {
            "c2": [400.0, 800.0, 1600.0, 3200.0],
            "rtt2": [0.012, 0.050, 0.200, 0.800],
        },
        "seed": 141,
        "warmup": 25.0,
        "duration": 70.0,
        "title": "Fig 16: M's throughput / best(S1, S2) on a C2/RTT2 grid",
    },
    "fig8_torus_zoo": {
        "scenario": "torus_balance",
        "parameters": {
            "algo": [
                "uncoupled", "ewtcp", "coupled", "semicoupled", "lia",
                "cubic", "olia", "balia", "wvegas",
            ],
            "capacity_c": [1000.0, 250.0],
            "check": [1],
        },
        "seed": 29,
        "warmup": 10.0,
        "duration": 25.0,
        "title": "Fig 8 zoo: torus loss-rate balance across all nine "
                 "controllers (invariant-checked)",
    },
    "fig16_rtt_zoo": {
        "scenario": "rtt_ratio",
        "parameters": {
            "algo": [
                "uncoupled", "ewtcp", "coupled", "semicoupled", "lia",
                "cubic", "olia", "balia", "wvegas",
            ],
            "c2": [400.0, 1600.0],
            "rtt2": [0.050, 0.200],
            "check": [1],
        },
        "seed": 151,
        "warmup": 15.0,
        "duration": 40.0,
        "title": "Fig 16 zoo: RTT compensation across all nine controllers "
                 "(invariant-checked)",
    },
    "demo_rtt": {
        "scenario": "rtt_ratio",
        "parameters": {
            "c2": [400.0, 800.0],
            "rtt2": [0.012, 0.050, 0.100, 0.200],
        },
        "seed": 7,
        "warmup": 2.0,
        "duration": 4.0,
        "title": "Demo: 8-point RTT-compensation grid (seconds, not minutes)",
    },
    "fig8_torus_hybrid": {
        "scenario": "torus_hybrid",
        "parameters": {
            "algo": ["ewtcp", "lia", "coupled"],
            "classes": [5],
            "flows_per_class": [40],
            "tracers": [2],
            "capacity_c_factor": [1.0, 0.25],
            "check": [1],
        },
        "seed": 31,
        "warmup": 10.0,
        "duration": 20.0,
        "title": "Fig 8 hybrid: 200 aggregate flows per point on the torus, "
                 "with packet tracers (invariant-checked)",
    },
    "fig8_torus_hybrid_1m": {
        "scenario": "torus_hybrid",
        "parameters": {
            "algo": ["lia"],
            "classes": [1000],
            "flows_per_class": [1000],
            "tracers": [10],
            "capacity_c_factor": [0.5],
            "dt": [0.02],
            "check": [1],
        },
        "seed": 61,
        "warmup": 4.0,
        "duration": 8.0,
        "title": "Fig 8 hybrid at scale: 10^6 aggregate flows "
                 "(1000 classes x 1000 flows) + 10 packet tracers on one "
                 "machine (invariant-checked)",
    },
    "wifi_3g_handover": {
        "scenario": "wifi_3g_handover",
        "parameters": {
            "algo": ["lia", "mptcp"],
            "mode": ["break_before_make", "make_before_break"],
        },
        "seed": 17,
        "warmup": 6.0,
        "duration": 18.0,
        "title": "§5 mobility: WiFi→3G handover under a scripted outage",
    },
    "subflow_churn": {
        "scenario": "subflow_churn",
        "parameters": {
            "algo": ["lia"],
            "policy": ["full_mesh", "backup", "ndiffports"],
            "churn_period": [3.0, 6.0],
        },
        "seed": 23,
        "warmup": 4.0,
        "duration": 16.0,
        "title": "Subflow churn: one path repeatedly dying and recovering",
    },
    "rt_loopback": {
        "scenario": "rt_loopback",
        "parameters": {
            "algo": ["lia"],
            "backend": ["sim", "rt"],
            "netem": ["lan", "lossy_lan"],
            "check": [1],
        },
        "seed": 5,
        "warmup": 0.5,
        "duration": 2.0,
        "title": "Real-network backend: loopback-UDP two-subflow transfer "
                 "vs its sim twin (wall-clock seconds per rt point; "
                 "backend/netem key the result cache — docs/REALNET.md)",
    },
}


def build_shared_bottleneck(
    sim: Simulation,
    rate_pps: float = 1000.0,
    delay: float = 0.05,
    buffer_pkts: int = 100,
    subflows: int = 2,
) -> Scenario:
    """Fig 1: one bottleneck link shared by a single-path TCP and a
    multipath flow whose ``subflows`` paths all cross the same bottleneck.

    The fairness question of §2.1: running regular TCP on each subflow
    would grab ``subflows`` times the single-path flow's share.
    """
    net = Network(sim)
    net.add_link("src", "dst", rate_pps, delay, buffer_pkts)
    single = [net.route(["src", "dst"], name="single")]
    multi = [
        net.route(["src", "dst"], name=f"multi.{i}") for i in range(subflows)
    ]
    return Scenario(sim, net, {"single": single, "multi": multi})


def build_two_links(
    sim: Simulation,
    rate1_pps: float,
    rate2_pps: float,
    delay1: float = 0.005,
    delay2: float = 0.005,
    buffer1_pkts: int = 50,
    buffer2_pkts: int = 50,
) -> Scenario:
    """Figs 5/9/14: two parallel bottleneck links.

    Single-path flows use ``link1``/``link2``; a multipath flow uses both.
    This is the shape of the dynamic-load scenario (§2.4/§3), the server
    load-balancing testbed (Fig 10) and the wireless-client topology
    (Fig 14).
    """
    net = Network(sim)
    net.add_link("s1", "d1", rate1_pps, delay1, buffer1_pkts)
    net.add_link("s2", "d2", rate2_pps, delay2, buffer2_pkts)
    return Scenario(
        sim,
        net,
        {
            "link1": [net.route(["s1", "d1"], name="link1")],
            "link2": [net.route(["s2", "d2"], name="link2")],
            "multi": [
                net.route(["s1", "d1"], name="multi.1"),
                net.route(["s2", "d2"], name="multi.2"),
            ],
        },
    )


def build_triangle(
    sim: Simulation,
    rate_pps: float = 1000.0,
    delay: float = 0.05,
    buffer_pkts: int = 100,
) -> Scenario:
    """Fig 2: three equal links in a ring; flow i has a one-hop path over
    link i and a two-hop path over links i+1, i+2.

    With an even split every link carries three subflows (one one-hop, two
    two-hop) so each subflow gets C/3 and each flow 2C/3; using only the
    one-hop paths each flow gets the full C.  An efficient multipath
    algorithm must concentrate on the one-hop (less congested) paths.
    """
    net = Network(sim)
    for i in range(3):
        net.add_link(f"in{i}", f"out{i}", rate_pps, delay, buffer_pkts)
        # Wire link exits to the next link's entry so two-hop paths exist.
        net.add_link(f"out{i}", f"in{(i + 1) % 3}", rate_pps * 100, 0.0, 10**6)
    flow_routes = {}
    for i in range(3):
        short = net.route([f"in{i}", f"out{i}"], name=f"f{i}.short")
        j, k = (i + 1) % 3, (i + 2) % 3
        long = net.route(
            [f"in{j}", f"out{j}", f"in{k}", f"out{k}"], name=f"f{i}.long"
        )
        flow_routes[f"f{i}"] = [short, long]
    return Scenario(sim, net, flow_routes)


def build_chain(
    sim: Simulation,
    rates_pps: List[float],
    delay: float = 0.05,
    buffer_pkts: int = 100,
) -> Scenario:
    """Fig 3: a chain of links where consecutive flows share a link.

    ``rates_pps`` gives the capacities of the n links; there are n-1 flows,
    flow i using single-hop paths over links i and i+1.  The paper's
    instance has capacities 5/12/10/3 Mb/s: EWTCP yields totals (11, 11, 8)
    Mb/s whereas COUPLED equalises everything at 10 Mb/s.
    """
    if len(rates_pps) < 2:
        raise ValueError("chain needs at least two links")
    net = Network(sim)
    for i, rate in enumerate(rates_pps):
        net.add_link(f"in{i}", f"out{i}", rate, delay, buffer_pkts)
    flow_routes = {}
    for i in range(len(rates_pps) - 1):
        flow_routes[f"f{i}"] = [
            net.route([f"in{i}", f"out{i}"], name=f"f{i}.a"),
            net.route([f"in{i + 1}", f"out{i + 1}"], name=f"f{i}.b"),
        ]
    return Scenario(sim, net, flow_routes)


def build_torus(
    sim: Simulation,
    rates_pps: List[float],
    delay: float = 0.05,
    buffer_pkts: int = None,
) -> Scenario:
    """Fig 7: n bottleneck links in a ring ("torus"); flow i's two paths
    cross links i and (i+1) mod n, so each link serves two multipath flows.

    The paper uses five links with 100 ms RTT and one bandwidth-delay
    product of buffering; link C's capacity is varied to test how well
    congestion is balanced (Fig 8).  ``buffer_pkts=None`` sizes each buffer
    at one BDP of its own link.
    """
    n = len(rates_pps)
    if n < 3:
        raise ValueError("torus needs at least three links")
    net = Network(sim)
    for i, rate in enumerate(rates_pps):
        buf = buffer_pkts
        if buf is None:
            buf = max(2, int(rate * 2 * delay))  # one BDP of this link
        net.add_link(f"in{i}", f"out{i}", rate, delay, buf)
    flow_routes = {}
    for i in range(n):
        j = (i + 1) % n
        flow_routes[f"f{i}"] = [
            net.route([f"in{i}", f"out{i}"], name=f"f{i}.a"),
            net.route([f"in{j}", f"out{j}"], name=f"f{i}.b"),
        ]
    return Scenario(sim, net, flow_routes)
