"""FatTree data-center topology (Al-Fares et al., §4 of the paper).

A k-ary FatTree has k pods, each with k/2 edge and k/2 aggregation
switches; (k/2)² core switches; and k³/4 hosts.  The paper's simulations
use k = 8: "128 single-interface hosts and 80 eight-port switches", all
links 100 Mb/s.

Naming: hosts ``h<i>``, edge ``e<pod>_<j>``, aggregation ``a<pod>_<j>``,
core ``c<g>_<j>`` (core group g is wired to aggregation switch g of every
pod).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..net.network import Network
from ..sim.simulation import Simulation

__all__ = ["FatTree"]


@dataclass
class FatTree:
    """A built k-ary FatTree."""

    sim: Simulation
    net: Network
    k: int
    hosts: List[str]

    @classmethod
    def build(
        cls,
        sim: Simulation,
        k: int = 8,
        rate_pps: float = 8333.0,
        delay: float = 1e-4,
        buffer_pkts: int = 100,
    ) -> "FatTree":
        """Construct a k-ary FatTree (k even).

        Defaults model the paper's setup: 100 Mb/s links (≈8333 pkt/s for
        1500-byte packets) and short intra-datacenter latencies.
        """
        if k < 2 or k % 2:
            raise ValueError(f"FatTree requires even k >= 2, got {k!r}")
        net = Network(sim)
        half = k // 2
        hosts: List[str] = []

        def link(a: str, b: str) -> None:
            net.add_link(a, b, rate_pps, delay, buffer_pkts)

        for pod in range(k):
            for j in range(half):
                edge = f"e{pod}_{j}"
                agg = f"a{pod}_{j}"
                # Hosts under this edge switch.
                for m in range(half):
                    host = f"h{pod * half * half + j * half + m}"
                    hosts.append(host)
                    link(host, edge)
                # Edge to every aggregation switch in the pod.
                for jj in range(half):
                    link(edge, f"a{pod}_{jj}")
            # Aggregation j connects to core group j.
            for j in range(half):
                for m in range(half):
                    link(f"a{pod}_{j}", f"c{j}_{m}")
        hosts.sort(key=lambda h: int(h[1:]))
        return cls(sim=sim, net=net, k=k, hosts=hosts)

    # ------------------------------------------------------------------
    @property
    def num_hosts(self) -> int:
        return len(self.hosts)

    @property
    def num_switches(self) -> int:
        return self.net.graph.number_of_nodes() - self.num_hosts

    def host_pod(self, host: str) -> int:
        return int(host[1:]) // ((self.k // 2) ** 2)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FatTree(k={self.k}, hosts={self.num_hosts}, "
            f"switches={self.num_switches})"
        )
