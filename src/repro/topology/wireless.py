"""The wireless-client scenarios of §5: WiFi + 3G paths, and the mobile
walk of Fig 17.

The paper's measurements (§2.3, §5) characterise the two media:

* **WiFi**: high rate (14.4 Mb/s in the static tests), short RTT (~10 ms),
  but lossy (~1–4 % from 2.4 GHz interference) and *underbuffered* ("it
  seems that the WiFi basestation is underbuffered").
* **3G**: low rate (2.1 Mb/s), *overbuffered* ("RTTs of well over a
  second"), very low ambient loss.

We model each as an access-link queue (variable-rate, so coverage changes
can be scripted) followed by a lossy pipe for ambient radio loss.  The
mobile experiment (Fig 17) is reproduced by a :class:`LinkSchedule` that
replays capacity changes — e.g. WiFi dropping to zero on the stairwell —
against the queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..net.network import mbps_to_pps
from ..net.pipe import LossyPipe
from ..net.queue import VariableRateQueue
from ..net.route import Route
from ..sim.simulation import Simulation

__all__ = ["WirelessPath", "build_wifi_path", "build_3g_path", "LinkSchedule"]


@dataclass
class WirelessPath:
    """One wireless access path: its queue, ambient-loss pipe and route."""

    queue: VariableRateQueue
    pipe: LossyPipe
    route_template: Tuple[VariableRateQueue, LossyPipe]
    reverse_delay: float
    sim: Simulation
    name: str

    def route(self, name: str = "") -> Route:
        """A fresh Route over this path (flows sharing the path share the
        queue and pipe, as they share the physical medium)."""
        return Route(
            self.sim,
            list(self.route_template),
            reverse_delay=self.reverse_delay,
            name=name or self.name,
        )

    def set_rate_mbps(self, mbps: float) -> None:
        self.queue.set_rate(mbps_to_pps(mbps))


def _build_path(
    sim: Simulation,
    rate_mbps: float,
    one_way_delay: float,
    buffer_pkts: int,
    loss_prob: float,
    name: str,
) -> WirelessPath:
    queue = VariableRateQueue(
        sim, mbps_to_pps(rate_mbps), buffer_pkts, name=f"{name}.q"
    )
    pipe = LossyPipe(sim, one_way_delay, loss_prob, name=f"{name}.pipe")
    return WirelessPath(
        queue=queue,
        pipe=pipe,
        route_template=(queue, pipe),
        reverse_delay=one_way_delay,
        sim=sim,
        name=name,
    )


def build_wifi_path(
    sim: Simulation,
    rate_mbps: float = 14.4,
    rtt_floor: float = 0.010,
    buffer_pkts: int = 20,
    loss_prob: float = 0.01,
    name: str = "wifi",
) -> WirelessPath:
    """A WiFi access path: fast, short-RTT, underbuffered, lossy (§5)."""
    return _build_path(
        sim, rate_mbps, rtt_floor / 2.0, buffer_pkts, loss_prob, name
    )


def build_3g_path(
    sim: Simulation,
    rate_mbps: float = 2.1,
    rtt_floor: float = 0.100,
    buffer_pkts: int = 300,
    loss_prob: float = 0.0,
    name: str = "3g",
) -> WirelessPath:
    """A 3G access path: slow, overbuffered (full buffer => RTT well over a
    second: 300 pkts / 175 pkt/s ≈ 1.7 s), nearly loss-free (§5)."""
    return _build_path(
        sim, rate_mbps, rtt_floor / 2.0, buffer_pkts, loss_prob, name
    )


class LinkSchedule:
    """Replays scripted capacity changes against wireless paths (Fig 17).

    Each event is ``(time, path, rate_mbps)``; a rate of 0 models a
    coverage outage (the stairwell with no WiFi).  Observers — e.g. the
    handover module of :mod:`repro.pathmgr` — can :meth:`subscribe` to be
    told about each applied change, in schedule order.
    """

    def __init__(
        self,
        sim: Simulation,
        events: Sequence[Tuple[float, WirelessPath, float]],
    ):
        self.sim = sim
        self.events: List[Tuple[float, WirelessPath, float]] = sorted(
            events, key=lambda e: e[0]
        )
        self.applied = 0
        self._subscribers: List[Callable[[float, WirelessPath, float], None]] = []

    def subscribe(
        self, callback: Callable[[float, WirelessPath, float], None]
    ) -> None:
        """Call ``callback(now, path, rate_mbps)`` after each applied
        change (after the rate has taken effect on the queue)."""
        self._subscribers.append(callback)

    def start(self) -> None:
        for time, path, mbps in self.events:
            self.sim.schedule_at(time, self._apply, (path, mbps))

    def _apply(self, event: Tuple[WirelessPath, float]) -> None:
        path, mbps = event
        path.set_rate_mbps(mbps)
        self.applied += 1
        for callback in list(self._subscribers):
            callback(self.sim.now, path, mbps)
