"""Command-line experiment runner: ``python -m repro <command>``.

Gives downstream users one-line access to the paper's scenarios without
writing harness code:

    python -m repro algorithms
    python -m repro bottleneck --algo mptcp --competitors 6
    python -m repro twolinks --algo coupled --rate1 500 --rate2 1000
    python -m repro wireless --algo mptcp --duration 60
    python -m repro torus --capacity-c 250 --algo mptcp
    python -m repro fattree --k 4 --algo mptcp --paths 4

Observability (see docs/OBSERVABILITY.md for the event schema):

    python -m repro trace --scenario quickstart --out trace.jsonl
    python -m repro trace-validate trace.jsonl
    python -m repro series --scenario twolinks --out series.csv

Parameter sweeps over worker processes (see docs/RUNNER.md):

    python -m repro sweep --list
    python -m repro sweep fig16_rtt --parallel 4
    python -m repro sweep demo_rtt --parallel 2 --trace sweep.jsonl

Distributed, crash-resumable farm execution (see docs/RUNNER.md):

    python -m repro farm serve fig16_rtt --root /shared/farm --workers 2
    python -m repro farm work /shared/farm          # on any other host
    python -m repro farm status /shared/farm

Invariant-checked (optionally fault-injected) runs (see docs/CHECKING.md):

    python -m repro check --scenario torus_balance --fault link_flap --seed 1
    python -m repro check --scenario rtt_ratio --param c2=1600 --out check.jsonl

Path management and mobility (see docs/PATH_MANAGEMENT.md):

    python -m repro handover --mode make_before_break
    python -m repro handover --policy full_mesh --trace handover.jsonl
    python -m repro sweep wifi_3g_handover --parallel 2

Real-network backend: the same state machines over loopback UDP sockets
(see docs/REALNET.md):

    python -m repro rt --algo lia --netem lan --trace rt.jsonl
    python -m repro rt --handover --mode make_before_break
    python -m repro rt --divergence

Hot-path benchmarks and the regression gate (see docs/REPRODUCTION_NOTES.md):

    python -m repro bench                    # write BENCH_pr4.json
    python -m repro bench --gate             # fail on >10% rate regression
    python -m repro bench --update-baseline  # re-record the local baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import bench as bench_mod
from .check import CHECK_EVENTS, InvariantViolation, trace_override
from .core.registry import ALGORITHMS
from .exp import ResultCache, Runner, specs_for_grid
from .exp.grids import SCENARIOS
from .exp.spec import ScenarioSpec
from .fault import FAULT_PRESETS
from .harness.datacenter import run_matrix
from .harness.experiment import make_flow, measure, standard_series
from .harness.table import Table
from .metrics import jain_index
from .net.network import pps_to_mbps
from .obs import (
    EVENT_TYPES,
    FilterSink,
    JsonlSink,
    TraceBus,
    TraceSchemaError,
    validate_jsonl,
)
from .pathmgr import HANDOVER_MODES, PATHMGR_EVENTS, POLICIES
from .rt import divergence_report
from .rt.divergence import tolerance_scale as rt_tolerance_scale
from .rt.netem import PROFILES as RT_PROFILES
from .sim.simulation import Simulation
from .topology import (
    SWEEP_GRIDS,
    FatTree,
    build_shared_bottleneck,
    build_torus,
    build_two_links,
    build_3g_path,
    build_wifi_path,
)
from .traffic import permutation_matrix

__all__ = ["main"]


def _cmd_algorithms(_args) -> int:
    table = Table(["name", "controller"])
    for name in sorted(ALGORITHMS):
        table.add_row([name, ALGORITHMS[name]().__class__.__name__])
    print(table.render("Available congestion control algorithms"))
    return 0


def _cmd_bottleneck(args) -> int:
    sim = Simulation(seed=args.seed)
    sc = build_shared_bottleneck(
        sim, rate_pps=args.rate, delay=args.delay, buffer_pkts=args.buffer
    )
    flows = {}
    for i in range(args.competitors):
        f = make_flow(sim, [sc.net.route(["src", "dst"], name=f"s{i}")],
                      "reno", name=f"s{i}")
        f.start(at=0.05 * i)
        flows[f"s{i}"] = f
    multi = make_flow(sim, sc.routes("multi"), args.algo, name="multi")
    multi.start(at=0.4)
    flows["multi"] = multi
    m = measure(sim, flows, warmup=args.warmup, duration=args.duration)
    singles = sum(m[f"s{i}"] for i in range(args.competitors)) / args.competitors
    table = Table(["flow", "rate pkt/s"])
    table.add_row(["single-path mean", singles])
    table.add_row([f"{args.algo} (2 subflows)", m["multi"]])
    table.add_row(["ratio", m["multi"] / singles])
    print(table.render(f"Shared bottleneck ({args.rate:.0f} pkt/s, "
                       f"{args.competitors} competing TCPs)"))
    return 0


def _cmd_twolinks(args) -> int:
    sim = Simulation(seed=args.seed)
    sc = build_two_links(
        sim, args.rate1, args.rate2,
        delay1=args.delay, delay2=args.delay,
        buffer1_pkts=args.buffer, buffer2_pkts=args.buffer,
    )
    multi = make_flow(sim, sc.routes("multi"), args.algo, name="m")
    multi.start()
    m = measure(sim, {"m": multi}, warmup=args.warmup, duration=args.duration)
    r1, r2 = m.subflow_rates["m"]
    table = Table(["quantity", "pkt/s"])
    table.add_row(["total", m["m"]])
    table.add_row(["path 1", r1])
    table.add_row(["path 2", r2])
    print(table.render(f"{args.algo} over two links "
                       f"({args.rate1:.0f} + {args.rate2:.0f} pkt/s)"))
    return 0


def _cmd_wireless(args) -> int:
    sim = Simulation(seed=args.seed)
    wifi = build_wifi_path(sim)
    threeg = build_3g_path(sim)
    flow = make_flow(
        sim, [wifi.route("m.wifi"), threeg.route("m.3g")], args.algo, name="m"
    )
    flow.start()
    m = measure(sim, {"m": flow}, warmup=args.warmup, duration=args.duration)
    wifi_rate, threeg_rate = m.subflow_rates["m"]
    table = Table(["quantity", "Mb/s"])
    table.add_row(["total", pps_to_mbps(m["m"])])
    table.add_row(["WiFi path (14.4 Mb/s)", pps_to_mbps(wifi_rate)])
    table.add_row(["3G path (2.1 Mb/s)", pps_to_mbps(threeg_rate)])
    print(table.render(f"{args.algo} wireless client (§5 static scenario)"))
    return 0


def _cmd_torus(args) -> int:
    sim = Simulation(seed=args.seed)
    rates = [args.rate] * 5
    rates[2] = args.capacity_c
    sc = build_torus(sim, rates, delay=args.delay)
    flows = {}
    for i in range(5):
        f = make_flow(sim, sc.routes(f"f{i}"), args.algo, name=f"f{i}")
        f.start(at=0.1 * i)
        flows[f"f{i}"] = f
    sim.run_until(args.warmup)
    queues = [sc.net.link(f"in{i}", f"out{i}").queue for i in range(5)]
    for q in queues:
        q.reset_counters()
    m = measure(sim, flows, warmup=args.warmup, duration=args.duration)
    table = Table(["link", "capacity", "loss rate", "flow", "total pkt/s"],
                  precision=4)
    for i in range(5):
        table.add_row([
            "ABCDE"[i], rates[i], queues[i].loss_rate, f"f{i}", m[f"f{i}"]
        ])
    totals = [m[f"f{i}"] for i in range(5)]
    print(table.render(f"Torus (Fig 7) with {args.algo}; "
                       f"Jain index {jain_index(totals):.3f}"))
    return 0


def _cmd_fattree(args) -> int:
    sim = Simulation(seed=args.seed)
    ft = FatTree.build(sim, k=args.k, rate_pps=args.rate, buffer_pkts=args.buffer)
    pairs = permutation_matrix(ft.hosts, sim.rng)
    run = run_matrix(
        sim, ft.net, pairs, args.algo,
        path_count=args.paths, warmup=args.warmup, duration=args.duration,
        host_link_rate=args.rate,
    )
    rates = run.sorted_rates()
    table = Table(["quantity", "value"])
    table.add_row(["hosts", ft.num_hosts])
    table.add_row(["mean throughput (% NIC)", 100 * run.mean_utilisation()])
    table.add_row(["worst flow (% NIC)", 100 * rates[0] / args.rate])
    table.add_row(["Jain index", jain_index(rates)])
    print(table.render(f"FatTree k={args.k}, TP1, {args.algo} "
                       f"({args.paths} paths)"))
    return 0


def _cmd_sweep(args) -> int:
    if args.list:
        table = Table(["grid", "points", "scenario", "description"])
        for name in sorted(SWEEP_GRIDS):
            grid = SWEEP_GRIDS[name]
            points = 1
            for values in grid["parameters"].values():
                points *= len(values)
            table.add_row([name, points, grid["scenario"], grid["title"]])
        print(table.render("Named sweep grids (python -m repro sweep <grid>)"))
        return 0
    if args.grid is None:
        print("error: name a grid to run, or pass --list", file=sys.stderr)
        return 2
    specs = specs_for_grid(
        args.grid, seed=args.seed, warmup=args.warmup, duration=args.duration
    )
    bus = None
    if args.trace:
        bus = TraceBus(sinks=[JsonlSink(args.trace)])
    runner = Runner(
        parallel=args.parallel,
        cache=None if args.no_cache else ResultCache(args.cache_dir),
        trace=bus,
        timeout=args.timeout,
        retries=args.retries,
    )
    try:
        rows = runner.run(specs)
    finally:
        if bus is not None:
            bus.close()
    table = Table(list(rows[0]), precision=4)
    for row in rows:
        table.add_row(list(row.values()))
    print(table.render(SWEEP_GRIDS[args.grid]["title"]))
    print(
        f"{len(rows)} points in {runner.wall:.1f}s wall "
        f"(workers={args.parallel}): {runner.executed} executed, "
        f"{runner.cache_hits} cache hits, {runner.retried} retries"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(rows, fh, indent=2)
        print(f"wrote {len(rows)} rows to {args.out}")
    return 0


def _cmd_farm_serve(args) -> int:
    from .farm import run_farm

    specs = specs_for_grid(
        args.grid, seed=args.seed, warmup=args.warmup, duration=args.duration
    )
    from .exp.spec import TaskSpec

    tasks = [TaskSpec(index=i, spec=s) for i, s in enumerate(specs)]
    bus = None
    if args.trace:
        bus = TraceBus(sinks=[JsonlSink(args.trace)])
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    try:
        broker = run_farm(
            tasks, args.root, workers=args.workers, cache=cache, trace=bus,
            max_failures=args.retries, lease_ttl=args.lease_ttl,
        )
        rows = [broker.raw[t.index] for t in tasks]
    finally:
        if bus is not None:
            bus.close()
    print(
        f"farm complete: {len(rows)} rows ({args.grid}) in {args.root}; "
        f"executed={broker.executed}, store_hits={broker.store_hits}, "
        f"requeued={broker.requeued}"
    )
    print(f"rows: {args.root}/rows.jsonl")
    return 0


def _cmd_farm_work(args) -> int:
    from .farm import work

    processed = work(
        args.root, worker_id=args.id, lease_ttl=args.lease_ttl,
        max_tasks=args.max_tasks, idle_timeout=args.idle_timeout,
    )
    print(f"worker done: {processed} task(s) processed")
    return 0


def _cmd_farm_status(args) -> int:
    from .farm import FarmError, farm_status

    try:
        status = farm_status(args.root)
    except FarmError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    table = Table(["quantity", "value"])
    for key in ("state", "tasks", "done", "queued", "leased", "executed",
                "failures"):
        table.add_row([key, status[key]])
    print(table.render(f"farm {args.root}"))
    return 0 if status["state"] != "failed" else 1


#: Required-parameter defaults so ``repro check --scenario X`` runs without
#: spelling out a full grid point (override any of them with ``--param``).
CHECK_SCENARIO_DEFAULTS = {
    "torus_balance": {"capacity_c": 250.0},
    "rtt_ratio": {"c2": 800.0, "rtt2": 0.05},
}


def _parse_param(text: str):
    """``key=value`` with JSON-typed values (bare words stay strings)."""
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}"
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def _cmd_check(args) -> int:
    params = dict(CHECK_SCENARIO_DEFAULTS.get(args.scenario, {}))
    params.update(args.param or ())
    params["check"] = 1
    if args.fault:
        params["faults"] = list(args.fault)
    spec = ScenarioSpec(
        scenario=args.scenario,
        params=params,
        seed=args.seed,
        warmup=args.warmup,
        duration=args.duration,
    )
    to_stdout = args.out == "-"
    # The FilterSink narrows the JSONL output to check.*/fault.* records
    # while the invariant monitor (attached to the same bus inside the
    # point function) still sees the full event stream.
    sink = JsonlSink(sys.stdout if to_stdout else args.out)
    bus = TraceBus(sinks=[FilterSink(sink, CHECK_EVENTS)])
    log = sys.stderr if to_stdout else sys.stdout
    try:
        with trace_override(bus):
            row = SCENARIOS[args.scenario](spec)
    except InvariantViolation as exc:
        print(f"VIOLATION: {exc}", file=sys.stderr)
        return 1
    finally:
        bus.close()
    table = Table(["quantity", "value"], precision=4)
    for key, value in row.items():
        table.add_row([key, value])
    faults = ", ".join(args.fault) if args.fault else "none"
    print(table.render(
        f"checked {args.scenario} (seed {args.seed}, faults: {faults})"
    ), file=log)
    print(f"wrote {sink.records_written} check/fault events"
          + ("" if to_stdout else f" to {args.out}"), file=log)
    return 0


def _cmd_handover(args) -> int:
    spec = ScenarioSpec(
        scenario="wifi_3g_handover",
        params={
            "algo": args.algo,
            "policy": args.policy,
            "mode": args.mode,
            "degraded_mbps": args.degraded_mbps,
            "check": 1,
        },
        seed=args.seed,
        warmup=args.warmup,
        duration=args.duration,
    )
    sink = bus = None
    if args.trace:
        sink = JsonlSink(args.trace)
        bus = TraceBus(sinks=[FilterSink(sink, PATHMGR_EVENTS | CHECK_EVENTS)])
    try:
        if bus is not None:
            with trace_override(bus):
                row = SCENARIOS["wifi_3g_handover"](spec)
        else:
            row = SCENARIOS["wifi_3g_handover"](spec)
    except InvariantViolation as exc:
        print(f"VIOLATION: {exc}", file=sys.stderr)
        return 1
    finally:
        if bus is not None:
            bus.close()
    table = Table(["phase", "pkt/s", "Mb/s"], precision=1)
    table.add_row(["before outage", row["pre_pps"],
                   pps_to_mbps(row["pre_pps"])])
    table.add_row(["during outage", row["outage_pps"],
                   pps_to_mbps(row["outage_pps"])])
    table.add_row(["after recovery", row["post_pps"],
                   pps_to_mbps(row["post_pps"])])
    print(table.render(
        f"WiFi→3G handover: {args.algo}, {args.policy} policy, "
        f"{args.mode} (seed {args.seed})"
    ))
    print(
        f"handovers={row['handovers']}  "
        f"subflows opened={row['subflows_opened']} "
        f"closed={row['subflows_closed']}  "
        f"join failures={row['join_failures']}  "
        f"delivery gap={row['delivery_gap']}  "
        f"violations={row['violations']}"
    )
    if args.trace:
        print(f"wrote {sink.records_written} pathmgr/check events "
              f"to {args.trace}")
    if row["delivery_gap"]:
        print("FAIL: nonzero delivery gap — data acknowledged at "
              "connection level but never delivered in order",
              file=sys.stderr)
        return 1
    return 0


def _cmd_rt(args) -> int:
    """Real-backend demos: loopback transfer, handover, divergence."""
    scenario = "rt_handover" if args.handover else "rt_loopback"
    duration = args.duration
    if duration is None:
        duration = 4.5 if args.handover else 2.0
    params = {"algo": args.algo, "check": 1}
    if args.handover:
        params["mode"] = args.mode
    else:
        params["netem"] = args.netem
    spec = ScenarioSpec(
        scenario=scenario, params=params, seed=args.seed,
        warmup=args.warmup, duration=duration,
    )
    sink = bus = None
    if args.trace:
        sink = JsonlSink(args.trace)
        bus = TraceBus(sinks=[sink])
    try:
        if args.divergence:
            report = divergence_report(spec, trace=bus)
            print(report)
            try:
                report.assert_within()
            except AssertionError as exc:
                print(f"FAIL: {exc}", file=sys.stderr)
                return 1
            print("divergence within tolerance "
                  f"(scale={rt_tolerance_scale():g})")
            return 0
        if bus is not None:
            with trace_override(bus):
                row = SCENARIOS[scenario](spec)
        else:
            row = SCENARIOS[scenario](spec)
    except InvariantViolation as exc:
        print(f"VIOLATION: {exc}", file=sys.stderr)
        return 1
    finally:
        if bus is not None:
            bus.close()
    if args.handover:
        table = Table(["phase", "pkt/s", "Mb/s"], precision=1)
        table.add_row(["before outage", row["pre_pps"],
                       pps_to_mbps(row["pre_pps"])])
        table.add_row(["during outage", row["outage_pps"],
                       pps_to_mbps(row["outage_pps"])])
        table.add_row(["after recovery", row["post_pps"],
                       pps_to_mbps(row["post_pps"])])
        print(table.render(
            f"WiFi→3G handover on real UDP sockets: {args.algo} "
            f"(seed {args.seed})"
        ))
        print(
            f"handovers={row['handovers']}  "
            f"subflows opened={row['subflows_opened']} "
            f"closed={row['subflows_closed']}  "
            f"delivery gap={row['delivery_gap']}  "
            f"violations={row['violations']}"
        )
    else:
        table = Table(["metric", "value"], precision=1)
        table.add_row(["goodput (pkt/s)", row["goodput_pps"]])
        table.add_row(["goodput (Mb/s)", pps_to_mbps(row["goodput_pps"])])
        table.add_row(["delivered packets", row["delivered"]])
        table.add_row(["mean total cwnd", row["cwnd_mean"]])
        print(table.render(
            f"two-subflow {args.algo} over loopback UDP "
            f"(netem={args.netem}, seed {args.seed})"
        ))
        print(
            f"subflows={row['subflows_opened']}  "
            f"ctrl frames={row['ctrl_frames']}  "
            f"delivery gap={row['delivery_gap']}  "
            f"violations={row['violations']}"
        )
    if args.trace:
        print(f"wrote {sink.records_written} events to {args.trace}")
    if row["delivery_gap"]:
        print("FAIL: nonzero delivery gap on the real backend",
              file=sys.stderr)
        return 1
    return 0


#: Scenarios the observability commands can build (small, fast shapes that
#: cover single-path, multipath and wireless instrumentation).
OBS_SCENARIOS = ("quickstart", "twolinks", "wireless")


def _build_obs_scenario(sim: Simulation, scenario: str, algo: str):
    """Build one of :data:`OBS_SCENARIOS`; returns (flows, queues)."""
    if scenario in ("quickstart", "twolinks"):
        sc = build_two_links(
            sim, 1000.0, 1000.0, delay1=0.05, delay2=0.05,
            buffer1_pkts=100, buffer2_pkts=100,
        )
        queues = [sc.net.link("s1", "d1").queue, sc.net.link("s2", "d2").queue]
        flows = {}
        if scenario == "quickstart":
            # The examples/quickstart.py shape: a single-path TCP sharing
            # link 1 with a two-path multipath flow.
            tcp = make_flow(sim, sc.routes("link1"), "reno", name="tcp")
            tcp.start()
            flows["tcp"] = tcp
        multi = make_flow(sim, sc.routes("multi"), algo, name="mptcp")
        multi.start(at=0.1)
        flows["mptcp"] = multi
        return flows, queues
    if scenario == "wireless":
        wifi = build_wifi_path(sim)
        threeg = build_3g_path(sim)
        flow = make_flow(
            sim, [wifi.route("m.wifi"), threeg.route("m.3g")], algo, name="m"
        )
        flow.start()
        return {"m": flow}, [wifi.queue, threeg.queue]
    raise ValueError(f"unknown scenario {scenario!r}")


def _cmd_trace(args) -> int:
    if args.events:
        events = {e.strip() for e in args.events.split(",") if e.strip()}
        unknown = events - set(EVENT_TYPES)
        if unknown:
            print(f"unknown event types: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    else:
        # engine.event_fired is one record per scheduler dispatch — orders
        # of magnitude more volume than the rest; opt in explicitly.
        events = set(EVENT_TYPES) - {"engine.event_fired"}
    to_stdout = args.out == "-"
    sink = JsonlSink(sys.stdout if to_stdout else args.out)
    bus = TraceBus(sinks=[sink], events=events)
    sim = Simulation(seed=args.seed, trace=bus)
    _build_obs_scenario(sim, args.scenario, args.algo)
    sim.run_until(args.duration)
    sim.finish()
    bus.close()
    log = sys.stderr if to_stdout else sys.stdout
    print(f"wrote {sink.records_written} events "
          f"({args.scenario}, {args.algo}, {args.duration:.0f}s simulated)"
          + ("" if to_stdout else f" to {args.out}"), file=log)
    return 0


def _cmd_trace_validate(args) -> int:
    try:
        count = validate_jsonl(args.path)
    except TraceSchemaError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc.strerror}", file=sys.stderr)
        return 1
    print(f"OK: {count} events conform to the trace schema")
    return 0


def _cmd_series(args) -> int:
    sim = Simulation(seed=args.seed)
    flows, queues = _build_obs_scenario(sim, args.scenario, args.algo)
    rec = standard_series(
        sim, flows, queues=queues, interval=args.interval, warmup=args.warmup
    )
    sim.run_until(args.warmup + args.duration)
    sim.finish()
    to_stdout = args.out == "-"
    target = sys.stdout if to_stdout else args.out
    if args.format == "csv":
        rec.to_csv(target)
    else:
        rec.to_jsonl(target)
    log = sys.stderr if to_stdout else sys.stdout
    print(f"wrote {len(rec.rows)} samples x {len(rec.probe_names)} probes"
          + ("" if to_stdout else f" to {args.out}"), file=log)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multipath TCP congestion control experiments "
                    "(Wischik et al., NSDI 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, algo_default="mptcp"):
        p.add_argument("--algo", default=algo_default, choices=sorted(ALGORITHMS))
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--warmup", type=float, default=20.0)
        p.add_argument("--duration", type=float, default=60.0)

    sub.add_parser("algorithms", help="list available algorithms").set_defaults(
        func=_cmd_algorithms
    )

    p = sub.add_parser("bottleneck", help="Fig 1 shared-bottleneck fairness")
    common(p)
    p.add_argument("--rate", type=float, default=2000.0)
    p.add_argument("--delay", type=float, default=0.05)
    p.add_argument("--buffer", type=int, default=200)
    p.add_argument("--competitors", type=int, default=6)
    p.set_defaults(func=_cmd_bottleneck)

    p = sub.add_parser("twolinks", help="two-path flow over two links")
    common(p)
    p.add_argument("--rate1", type=float, default=500.0)
    p.add_argument("--rate2", type=float, default=500.0)
    p.add_argument("--delay", type=float, default=0.05)
    p.add_argument("--buffer", type=int, default=50)
    p.set_defaults(func=_cmd_twolinks)

    p = sub.add_parser("wireless", help="§5 WiFi+3G client")
    common(p)
    p.set_defaults(func=_cmd_wireless)

    p = sub.add_parser("torus", help="Fig 7/8 congestion balancing")
    common(p)
    p.add_argument("--rate", type=float, default=1000.0)
    p.add_argument("--capacity-c", type=float, default=250.0)
    p.add_argument("--delay", type=float, default=0.05)
    p.set_defaults(func=_cmd_torus)

    p = sub.add_parser("fattree", help="§4 FatTree TP1")
    common(p)
    p.add_argument("--k", type=int, default=4)
    p.add_argument("--rate", type=float, default=1042.0)
    p.add_argument("--buffer", type=int, default=100)
    p.add_argument("--paths", type=int, default=4)
    p.set_defaults(func=_cmd_fattree)

    p = sub.add_parser(
        "sweep",
        help="run a named parameter grid over worker processes, "
             "with result caching",
    )
    p.add_argument("grid", nargs="?", choices=sorted(SWEEP_GRIDS),
                   help="named grid (see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the named grids and exit")
    p.add_argument("--parallel", type=int, default=1,
                   help="worker process count (default 1 = in-process)")
    p.add_argument("--cache-dir", default=".sweep-cache",
                   help="result cache directory (default .sweep-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-point timeout, wall seconds (pool execution)")
    p.add_argument("--retries", type=int, default=1,
                   help="failed attempts tolerated per point (default 1)")
    p.add_argument("--seed", type=int, default=None,
                   help="override the grid's base seed")
    p.add_argument("--warmup", type=float, default=None,
                   help="override the grid's warm-up, simulated seconds")
    p.add_argument("--duration", type=float, default=None,
                   help="override the grid's measurement window, "
                        "simulated seconds")
    p.add_argument("--trace", default=None,
                   help="write exp.* progress events to this JSONL file")
    p.add_argument("--out", default=None,
                   help="write result rows to this JSON file")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "farm",
        help="distributed, crash-resumable grid execution over a shared "
             "farm directory (see docs/RUNNER.md)",
    )
    farm_sub = p.add_subparsers(dest="farm_command", required=True)

    fp = farm_sub.add_parser(
        "serve",
        help="serve a named grid into a farm directory, spawn local "
             "workers, aggregate rows (resumes if interrupted)",
    )
    fp.add_argument("grid", choices=sorted(SWEEP_GRIDS),
                    help="named grid (see 'repro sweep --list')")
    fp.add_argument("--root", required=True,
                    help="farm directory (shared filesystem for "
                         "multi-host runs)")
    fp.add_argument("--workers", type=int, default=1,
                    help="local worker processes to spawn (default 1; "
                         "0 = broker only, workers join from elsewhere)")
    fp.add_argument("--cache-dir", default=".sweep-cache",
                    help="shared result cache (default .sweep-cache)")
    fp.add_argument("--no-cache", action="store_true",
                    help="store results inside the farm directory only")
    fp.add_argument("--retries", type=int, default=1,
                    help="failed attempts tolerated per point (default 1)")
    fp.add_argument("--lease-ttl", type=float, default=15.0,
                    help="worker lease heartbeat deadline, seconds")
    fp.add_argument("--seed", type=int, default=None,
                    help="override the grid's base seed")
    fp.add_argument("--warmup", type=float, default=None,
                    help="override the grid's warm-up, simulated seconds")
    fp.add_argument("--duration", type=float, default=None,
                    help="override the grid's measurement window, "
                         "simulated seconds")
    fp.add_argument("--trace", default=None,
                    help="write farm.* progress events to this JSONL file")
    fp.set_defaults(func=_cmd_farm_serve)

    fp = farm_sub.add_parser(
        "work", help="run one worker against a farm directory"
    )
    fp.add_argument("root", help="farm directory")
    fp.add_argument("--id", default=None,
                    help="worker id (default <hostname>-<pid>)")
    fp.add_argument("--lease-ttl", type=float, default=15.0)
    fp.add_argument("--max-tasks", type=int, default=None,
                    help="exit after this many tasks")
    fp.add_argument("--idle-timeout", type=float, default=None,
                    help="exit after this long without work, seconds")
    fp.set_defaults(func=_cmd_farm_work)

    fp = farm_sub.add_parser(
        "status", help="summarise a farm directory's progress"
    )
    fp.add_argument("root", help="farm directory")
    fp.set_defaults(func=_cmd_farm_status)

    p = sub.add_parser(
        "check",
        help="run a scenario under the invariant monitor, optionally "
             "with injected faults; emit check/fault events as JSONL",
    )
    p.add_argument("--scenario", choices=sorted(SCENARIOS),
                   default="torus_balance")
    p.add_argument("--fault", action="append", default=None,
                   choices=sorted(FAULT_PRESETS),
                   help="inject a preset fault schedule (repeatable)")
    p.add_argument("--param", action="append", type=_parse_param,
                   metavar="KEY=VALUE",
                   help="scenario parameter override (repeatable; values "
                        "parsed as JSON when possible)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--warmup", type=float, default=5.0,
                   help="simulated warm-up seconds (default 5)")
    p.add_argument("--duration", type=float, default=10.0,
                   help="simulated measurement seconds (default 10)")
    p.add_argument("--out", default="-",
                   help="JSONL path for check.*/fault.* events "
                        "('-' for stdout)")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser(
        "handover",
        help="§5 mobility: scripted WiFi outage with path-manager "
             "failover to 3G (see docs/PATH_MANAGEMENT.md)",
    )
    p.add_argument("--algo", default="lia", choices=sorted(ALGORITHMS))
    p.add_argument("--policy", default="backup", choices=sorted(POLICIES),
                   help="path-manager policy (default backup: 3G hot "
                        "standby)")
    p.add_argument("--mode", default="break_before_make",
                   choices=HANDOVER_MODES)
    p.add_argument("--degraded-mbps", type=float, default=5.0,
                   help="make-before-break pre-warm threshold, Mb/s "
                        "(default 5)")
    p.add_argument("--seed", type=int, default=17)
    p.add_argument("--warmup", type=float, default=6.0)
    p.add_argument("--duration", type=float, default=18.0,
                   help="measurement window; the WiFi outage spans its "
                        "middle third")
    p.add_argument("--trace", default=None,
                   help="write pathmgr.*/check.* events to this JSONL file")
    p.set_defaults(func=_cmd_handover)

    p = sub.add_parser(
        "rt",
        help="real-network backend: the same state machines over "
             "loopback UDP sockets (see docs/REALNET.md)",
    )
    p.add_argument("--algo", default="lia", choices=sorted(ALGORITHMS))
    p.add_argument("--netem", default="lan", choices=sorted(RT_PROFILES),
                   help="impairment profile for the loopback transfer "
                        "(default lan)")
    p.add_argument("--handover", action="store_true",
                   help="run the WiFi→3G handover on real sockets "
                        "instead of the plain two-subflow transfer")
    p.add_argument("--mode", default="break_before_make",
                   choices=HANDOVER_MODES,
                   help="handover mode (with --handover)")
    p.add_argument("--divergence", action="store_true",
                   help="run the spec on both backends and report "
                        "per-metric sim-vs-real relative error")
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--warmup", type=float, default=0.5,
                   help="wall-clock warmup seconds (default 0.5)")
    p.add_argument("--duration", type=float, default=None,
                   help="wall-clock measurement seconds (default 2; "
                        "4.5 with --handover)")
    p.add_argument("--trace", default=None,
                   help="write all trace events to this JSONL file")
    p.set_defaults(func=_cmd_rt)

    p = sub.add_parser(
        "bench",
        help="run the hot-path benchmark suite, write a BENCH_*.json "
             "report, optionally gate on the recorded baseline",
    )
    p.add_argument("--scale", choices=sorted(bench_mod.SCALES),
                   default="full",
                   help="suite scale (default full; smoke for CI)")
    p.add_argument("--quick", action="store_const", const="quick",
                   dest="scale", help="alias for --scale quick")
    p.add_argument("--only", default=None,
                   help="comma-separated benchmark names to run "
                        f"(of: {', '.join(bench_mod.BENCH_SUITE)})")
    p.add_argument("--out", default=bench_mod.DEFAULT_OUT_PATH,
                   help=f"report path (default {bench_mod.DEFAULT_OUT_PATH})")
    p.add_argument("--baseline", default=bench_mod.DEFAULT_BASELINE_PATH,
                   help="baseline file to compare against "
                        f"(default {bench_mod.DEFAULT_BASELINE_PATH})")
    p.add_argument("--gate", action="store_true",
                   help="exit 1 if any rate regresses more than the "
                        "tolerance below the baseline")
    p.add_argument("--tolerance", type=float,
                   default=bench_mod.GATE_TOLERANCE,
                   help="gate tolerance as a fraction (default "
                        f"{bench_mod.GATE_TOLERANCE})")
    p.add_argument("--update-baseline", action="store_true",
                   help="re-record the baseline file from this run")
    p.set_defaults(func=bench_mod.main)

    p = sub.add_parser(
        "trace", help="run a scenario with event tracing, emit JSONL"
    )
    p.add_argument("--scenario", choices=OBS_SCENARIOS, default="quickstart")
    p.add_argument("--algo", default="mptcp", choices=sorted(ALGORITHMS))
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--duration", type=float, default=10.0,
                   help="simulated seconds to trace")
    p.add_argument("--out", default="-",
                   help="output JSONL path ('-' for stdout)")
    p.add_argument("--events", default=None,
                   help="comma-separated event types to record (default: "
                        "all except engine.event_fired)")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "trace-validate",
        help="validate a JSONL trace against the documented schema",
    )
    p.add_argument("path", help="JSONL trace file to check")
    p.set_defaults(func=_cmd_trace_validate)

    p = sub.add_parser(
        "series", help="record per-flow/per-queue time series (CSV/JSONL)"
    )
    p.add_argument("--scenario", choices=OBS_SCENARIOS, default="quickstart")
    common(p)
    p.add_argument("--interval", type=float, default=1.0,
                   help="sampling period, simulated seconds")
    p.add_argument("--format", choices=("csv", "jsonl"), default="csv")
    p.add_argument("--out", default="-",
                   help="output path ('-' for stdout)")
    p.set_defaults(func=_cmd_series)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
