"""Hot-path benchmarks and the performance-regression gate.

The paper's evaluation depends on the simulator being *fast* — the torus
and fat-tree sweeps (Figs. 8-13) are only feasible because htsim is a
"high-speed custom packet-level simulator".  This module keeps our core
honest about that: a small fixed suite of wall-clock benchmarks over the
per-event/per-packet hot paths, a recorded per-machine baseline, and a
gate that fails when throughput regresses.

Usage (``python -m repro bench``, or ``make bench-gate``)::

    repro bench                          # run, write BENCH_pr4.json
    repro bench --gate                   # additionally fail on regression
    repro bench --update-baseline        # re-record the local baseline
    repro bench --scale smoke            # tiny scale for CI / tests

The suite
---------

``engine_micro``
    A self-rescheduling callback chain on a bare
    :class:`~repro.sim.engine.EventScheduler` — the schedule/dispatch
    cycle with nothing else on top (rate unit: events/s).
``engine_cancel``
    Schedule-then-cancel churn, the access pattern of retransmission
    timers that are re-armed on every ACK.  Exercises the tombstone
    compaction path; also reports the peak event-heap length (a leak
    detector: without compaction this grows without bound).
``mptcp_micro``
    A two-subflow MPTCP flow over two 500 pkt/s links — the full
    packet/ACK round trip including the sender scoreboard (events/s).
``fig8_torus``
    One Fig 8 point: five MPTCP flows on the five-link torus with link C
    squeezed (events/s).  The figure of merit for the paper sweeps.
``sweep_scaling``
    A slice of the ``fig8_torus`` sweep grid executed through the
    registered point functions, as the parallel runner would (points/s).
``pathmgr_scenarios``
    One ``wifi_3g_handover`` point plus one ``subflow_churn`` point —
    the dynamic subflow lifecycle (MP_JOIN, retirement/reinjection,
    standby activation) on top of the usual packet hot path (points/s).
``zoo_scenarios``
    One ``fig8_torus_zoo`` point per round-2 controller (OLIA, BALIA,
    wVegas) — the per-ACK cost of the path-set/rate-cache controllers
    on a real topology (points/s).
``hybrid_scale``
    The flow-class tier at scale: a torus carrying tens of thousands of
    aggregate flows as fluid classes plus packet tracers, with a
    :class:`~repro.obs.series.SeriesRecorder` sampling every fluid step
    (rate unit: flows/s — aggregate flows simulated per wall-second).
    This benchmark also carries a **peak-heap ceiling**
    (:data:`HEAP_CEILINGS`): the gate fails if the tracemalloc peak
    exceeds it, pinning down the columnar recorder layout and the O(1)
    per-flow memory claim of the hybrid tier.

``BENCH_*.json`` schema
-----------------------

.. code-block:: json

    {
      "schema": "repro.bench/1",
      "scale": "full",
      "python": "3.x.y", "platform": "...",
      "benchmarks": {
        "engine_micro": {
          "wall_s": 0.61, "rate": 327000.0, "rate_unit": "events/s",
          "events": 200000, "peak_heap_bytes": 18344,
          "extra": {}
        }
      },
      "baseline": {"engine_micro": 260000.0},
      "gate": {"tolerance": 0.10, "passed": true, "failures": []}
    }

``rate`` is the gated quantity.  ``peak_heap_bytes`` is the tracemalloc
peak of a separate instrumented pass (timing passes run untraced).
``baseline``/``gate`` appear when a baseline file is available.

The baseline (``benchmarks/bench_baseline.json``) is **per machine**:
absolute rates are not comparable across hosts, so the gate only compares
runs against a baseline recorded on the same class of machine.  The
checked-in baseline records the pre-optimization (PR 3) state of the
hot paths and doubles as the reference point for the PR 4 speedup claim.
"""

from __future__ import annotations

import json
import platform
import sys
import time
import tracemalloc
from typing import Callable, Dict, List, Optional, Tuple

from .sim.engine import EventScheduler
from .sim.simulation import Simulation

__all__ = [
    "BENCH_SUITE",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_OUT_PATH",
    "GATE_TOLERANCE",
    "HEAP_CEILINGS",
    "run_suite",
    "gate",
    "load_baseline",
    "write_report",
]

#: Relative regression the gate tolerates before failing (10%).
GATE_TOLERANCE = 0.10

#: Absolute peak-heap ceilings (tracemalloc bytes) enforced by the gate
#: regardless of the rate baseline.  Ceilings are only meaningful for the
#: "full" scale (the instrumented pass at smaller scales allocates less,
#: so they hold a fortiori).  hybrid_scale's ceiling bounds ~30k fluid
#: flows + tracers + a per-step SeriesRecorder: measured ~0.4 MiB (the
#: fluid tier's state is per-class, not per-flow), capped with ~20x
#: headroom for interpreter variance — still far below what per-flow
#: state (let alone per-flow packets) for 30k flows would allocate.
HEAP_CEILINGS: Dict[str, int] = {
    "hybrid_scale": 8 * 1024 * 1024,
}

#: Where ``repro bench`` records the trajectory file by default.
DEFAULT_OUT_PATH = "BENCH_pr4.json"

#: The recorded per-machine baseline the gate compares against.
DEFAULT_BASELINE_PATH = "benchmarks/bench_baseline.json"

#: Per-benchmark scale knobs: (timing repeats, benchmark-specific sizes).
SCALES = {
    "full": {
        "repeats": 3,
        "engine_events": 200_000,
        "cancel_ops": 200_000,
        "mptcp_seconds": 10.0,
        "torus_warmup": 2.0,
        "torus_duration": 6.0,
        "sweep_points": 3,
        "sweep_warmup": 1.0,
        "sweep_duration": 2.0,
        "pathmgr_warmup": 2.0,
        "pathmgr_duration": 6.0,
        "zoo_warmup": 1.0,
        "zoo_duration": 3.0,
        "hybrid_classes": 60,
        "hybrid_flows_per_class": 500,
        "hybrid_tracers": 4,
        "hybrid_duration": 8.0,
    },
    "quick": {
        "repeats": 2,
        "engine_events": 50_000,
        "cancel_ops": 50_000,
        "mptcp_seconds": 3.0,
        "torus_warmup": 1.0,
        "torus_duration": 2.0,
        "sweep_points": 2,
        "sweep_warmup": 0.5,
        "sweep_duration": 1.0,
        "pathmgr_warmup": 1.0,
        "pathmgr_duration": 3.0,
        "zoo_warmup": 0.5,
        "zoo_duration": 1.5,
        "hybrid_classes": 20,
        "hybrid_flows_per_class": 200,
        "hybrid_tracers": 2,
        "hybrid_duration": 4.0,
    },
    "smoke": {
        "repeats": 1,
        "engine_events": 5_000,
        "cancel_ops": 5_000,
        "mptcp_seconds": 1.0,
        "torus_warmup": 0.5,
        "torus_duration": 0.5,
        "sweep_points": 2,
        "sweep_warmup": 0.25,
        "sweep_duration": 0.25,
        "pathmgr_warmup": 0.5,
        "pathmgr_duration": 1.5,
        "zoo_warmup": 0.25,
        "zoo_duration": 0.75,
        "hybrid_classes": 5,
        "hybrid_flows_per_class": 20,
        "hybrid_tracers": 1,
        "hybrid_duration": 1.0,
    },
}


def _noop() -> None:
    pass


# ----------------------------------------------------------------------
# Benchmark bodies.  Each returns (work_count, rate_unit, extra) where
# ``work_count / wall`` is the gated rate.
# ----------------------------------------------------------------------
def _bench_engine_micro(scale: dict) -> Tuple[int, str, dict]:
    """Fire-and-forget tick chain: the queue-service / pipe-delivery
    pattern that dominates packet simulations.  Uses the engine's best
    no-cancel scheduling API (``post_in`` where available, falling back
    to ``schedule_in`` so the pre-optimization engine can be measured
    with the same body when recording a baseline)."""
    n_events = scale["engine_events"]
    sched = EventScheduler()
    post_in = getattr(sched, "post_in", sched.schedule_in)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n_events:
            post_in(0.001, tick)

    post_in(0.001, tick)
    sched.run()
    assert count[0] == n_events
    return sched.events_run, "events/s", {}


def _bench_engine_cancel(scale: dict) -> Tuple[int, str, dict]:
    n_ops = scale["cancel_ops"]
    sched = EventScheduler()
    heap_peak = 0
    # Far-future timers armed and immediately cancelled: the RTO pattern.
    for i in range(n_ops):
        sched.schedule_at(1e6 + i * 1e-3, _noop).cancel()
        if i & 0x3FF == 0:
            heap_peak = max(heap_peak, len(sched._heap))
    heap_peak = max(heap_peak, len(sched._heap))
    return n_ops, "cancels/s", {
        "heap_len_peak": heap_peak,
        "heap_len_final": len(sched._heap),
        "pending_final": sched.pending,
    }


def _bench_mptcp_micro(scale: dict) -> Tuple[int, str, dict]:
    from .harness.experiment import make_flow
    from .topology import build_two_links

    sim = Simulation(seed=2)
    sc = build_two_links(sim, 500.0, 500.0, buffer1_pkts=50, buffer2_pkts=50)
    flow = make_flow(sim, sc.routes("multi"), "mptcp", name="m")
    flow.start()
    sim.run_until(scale["mptcp_seconds"])
    return sim.scheduler.events_run, "events/s", {
        "packets_delivered": flow.packets_delivered,
    }


def _bench_fig8_torus(scale: dict) -> Tuple[int, str, dict]:
    from .harness.experiment import make_flow
    from .topology import build_torus

    sim = Simulation(seed=1)
    rates = [1000.0] * 5
    rates[2] = 250.0
    sc = build_torus(sim, rates, delay=0.05)
    flows = []
    for i in range(5):
        f = make_flow(sim, sc.routes(f"f{i}"), "mptcp", name=f"f{i}")
        f.start(at=0.1 * i)
        flows.append(f)
    sim.run_until(scale["torus_warmup"] + scale["torus_duration"])
    return sim.scheduler.events_run, "events/s", {
        "packets_delivered": sum(f.packets_delivered for f in flows),
    }


def _bench_sweep_scaling(scale: dict) -> Tuple[int, str, dict]:
    from .exp.grids import SCENARIOS, specs_for_grid

    specs = specs_for_grid(
        "fig8_torus",
        warmup=scale["sweep_warmup"],
        duration=scale["sweep_duration"],
    )[: scale["sweep_points"]]
    for spec in specs:
        SCENARIOS[spec.scenario](spec)
    return len(specs), "points/s", {"points": len(specs)}


def _bench_pathmgr_scenarios(scale: dict) -> Tuple[int, str, dict]:
    from .exp.grids import SCENARIOS
    from .exp.spec import ScenarioSpec

    points = (
        ("wifi_3g_handover", {"mode": "break_before_make"}),
        ("subflow_churn", {"policy": "full_mesh",
                           "churn_period": scale["pathmgr_duration"] / 2.0}),
    )
    rows = []
    for scenario, params in points:
        spec = ScenarioSpec(
            scenario=scenario, params=params, seed=5,
            warmup=scale["pathmgr_warmup"],
            duration=scale["pathmgr_duration"],
        )
        rows.append(SCENARIOS[scenario](spec))
    return len(rows), "points/s", {
        "handovers": rows[0]["handovers"],
        "subflows_opened": sum(r["subflows_opened"] for r in rows),
        "delivery_gap": sum(r["delivery_gap"] for r in rows),
    }


def _bench_zoo_scenarios(scale: dict) -> Tuple[int, str, dict]:
    from .exp.grids import SCENARIOS
    from .exp.spec import ScenarioSpec

    rows = {}
    for algo in ("olia", "balia", "wvegas"):
        spec = ScenarioSpec(
            scenario="torus_balance",
            params={"algo": algo, "capacity_c": 250.0},
            seed=29,
            warmup=scale["zoo_warmup"],
            duration=scale["zoo_duration"],
        )
        rows[algo] = SCENARIOS["torus_balance"](spec)
    return len(rows), "points/s", {
        "jain": {algo: round(row["jain"], 4) for algo, row in rows.items()},
    }


def _bench_hybrid_scale(scale: dict) -> Tuple[int, str, dict]:
    from .harness.experiment import make_flow
    from .hybrid import HybridSimulation
    from .obs.series import SeriesRecorder
    from .topology import build_torus

    classes = scale["hybrid_classes"]
    per_class = scale["hybrid_flows_per_class"]
    tracers = scale["hybrid_tracers"]
    dt = 0.02
    per_flow_pps = 20.0

    sim = HybridSimulation(seed=61, dt=dt)
    # Round-robin class placement on the 5-link torus, links sized to the
    # load they carry (the torus_hybrid scenario's sizing rule).
    at_pos = [0] * 5
    for c in range(classes):
        at_pos[c % 5] += per_class
    for k in range(tracers):
        at_pos[k % 5] += 1
    rates = [
        per_flow_pps * (at_pos[i] + at_pos[(i - 1) % 5]) for i in range(5)
    ]
    sc = build_torus(sim, rates, delay=0.05)
    for c in range(classes):
        sim.add_class(
            sc.routes(f"f{c % 5}"), "lia", count=per_class, name=f"c{c}",
            rtt_scale=0.88 + 0.24 * ((c * 7919) % 97) / 96.0,
        )
    flows = []
    for k in range(tracers):
        f = make_flow(sim, sc.routes(f"f{k % 5}"), "lia", name=f"tr{k}",
                      max_cwnd=64.0)
        f.start(at=0.05 * (k + 1))
        flows.append(f)
    # Sample every fluid step: the recorder's columnar layout is part of
    # what the instrumented heap pass (and its ceiling) measures.
    rec = SeriesRecorder(sim, interval=dt)
    rec.add_probe("fluid_pps", lambda: sum(
        fc.throughput_pps() for fc in sim.classes))
    for link in sim.hybrid_links:
        rec.add_probe(f"backlog.{link.name}",
                      lambda l=link: l.backlog)
    rec.start()
    sim.run_until(scale["hybrid_duration"])
    aggregate = sim.aggregate_flows + tracers
    return aggregate, "flows/s", {
        "aggregate_flows": aggregate,
        "classes": classes,
        "fluid_pps": round(rec.mean("fluid_pps"), 1),
        "tracer_delivered": sum(f.packets_delivered for f in flows),
        "series_rows": len(rec.rows),
    }


#: Ordered suite: name -> body.
BENCH_SUITE: Dict[str, Callable[[dict], Tuple[int, str, dict]]] = {
    "engine_micro": _bench_engine_micro,
    "engine_cancel": _bench_engine_cancel,
    "mptcp_micro": _bench_mptcp_micro,
    "fig8_torus": _bench_fig8_torus,
    "sweep_scaling": _bench_sweep_scaling,
    "pathmgr_scenarios": _bench_pathmgr_scenarios,
    "zoo_scenarios": _bench_zoo_scenarios,
    "hybrid_scale": _bench_hybrid_scale,
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _time_once(body: Callable[[dict], Tuple[int, str, dict]],
               scale: dict) -> Tuple[float, int, str, dict]:
    start = time.perf_counter()
    work, unit, extra = body(scale)
    wall = time.perf_counter() - start
    return wall, work, unit, extra


def run_suite(
    scale_name: str = "full",
    only: Optional[List[str]] = None,
    log=None,
) -> Dict[str, dict]:
    """Run the suite at the given scale; returns name -> result dict.

    Timing is best-of-``repeats`` (untraced); a final tracemalloc pass
    per benchmark records ``peak_heap_bytes``.
    """
    scale = SCALES[scale_name]
    names = list(BENCH_SUITE) if not only else [
        n for n in BENCH_SUITE if n in only
    ]
    unknown = set(only or ()) - set(BENCH_SUITE)
    if unknown:
        raise ValueError(f"unknown benchmarks: {', '.join(sorted(unknown))}")
    results: Dict[str, dict] = {}
    for name in names:
        body = BENCH_SUITE[name]
        best_wall, work, unit, extra = _time_once(body, scale)
        for _ in range(scale["repeats"] - 1):
            wall, work, unit, extra = _time_once(body, scale)
            best_wall = min(best_wall, wall)
        tracemalloc.start()
        try:
            body(scale)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        results[name] = {
            "wall_s": round(best_wall, 6),
            "rate": round(work / best_wall, 2) if best_wall > 0 else None,
            "rate_unit": unit,
            "events": work,
            "peak_heap_bytes": peak,
            "extra": extra,
        }
        if log is not None:
            print(
                f"  {name:<14} {results[name]['rate']:>12,.0f} {unit:<10} "
                f"({best_wall:.3f}s wall, peak heap "
                f"{peak / 1024:.0f} KiB)",
                file=log,
            )
    return results


def load_baseline(path: str) -> Optional[Dict[str, float]]:
    """Read a baseline file; returns name -> rate (None if unreadable)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    rates = data.get("rates")
    if not isinstance(rates, dict):
        return None
    return {k: float(v) for k, v in rates.items()}


def gate(
    results: Dict[str, dict],
    baseline: Dict[str, float],
    tolerance: float = GATE_TOLERANCE,
) -> Tuple[bool, List[str]]:
    """Compare rates against the baseline; returns (passed, failures).

    A benchmark fails when its rate drops more than ``tolerance`` below
    the recorded baseline rate.  Benchmarks absent from either side are
    skipped (the suite may grow over time).  Independently of the rate
    baseline, any benchmark listed in :data:`HEAP_CEILINGS` fails when
    its instrumented peak heap exceeds the ceiling.
    """
    failures = []
    for name, result in results.items():
        base = baseline.get(name)
        rate = result.get("rate")
        if base is not None and rate is not None and base > 0:
            if rate < (1.0 - tolerance) * base:
                failures.append(
                    f"{name}: {rate:,.0f} {result['rate_unit']} is "
                    f"{100 * (1 - rate / base):.1f}% below baseline "
                    f"{base:,.0f}"
                )
        ceiling = HEAP_CEILINGS.get(name)
        peak = result.get("peak_heap_bytes")
        if ceiling is not None and peak is not None and peak > ceiling:
            failures.append(
                f"{name}: peak heap {peak / 2**20:.1f} MiB exceeds the "
                f"{ceiling / 2**20:.0f} MiB ceiling"
            )
    return not failures, failures


def write_report(
    path: str,
    results: Dict[str, dict],
    scale_name: str,
    baseline: Optional[Dict[str, float]] = None,
    gate_result: Optional[Tuple[bool, List[str]]] = None,
    tolerance: float = GATE_TOLERANCE,
) -> None:
    report = {
        "schema": "repro.bench/1",
        "scale": scale_name,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "benchmarks": results,
    }
    if baseline is not None:
        report["baseline"] = baseline
        improvements = {}
        for name, result in results.items():
            base = baseline.get(name)
            if base and result.get("rate"):
                improvements[name] = round(result["rate"] / base - 1.0, 4)
        report["improvement_vs_baseline"] = improvements
    if gate_result is not None:
        passed, failures = gate_result
        report["gate"] = {
            "tolerance": tolerance,
            "passed": passed,
            "failures": failures,
        }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def write_baseline(path: str, results: Dict[str, dict],
                   scale_name: str) -> None:
    data = {
        "schema": "repro.bench-baseline/1",
        "scale": scale_name,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "rates": {
            name: result["rate"] for name, result in results.items()
            if result.get("rate")
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")


def main(args) -> int:
    """Body of ``python -m repro bench`` (argparse namespace in, rc out)."""
    only = None
    if args.only:
        only = [n.strip() for n in args.only.split(",") if n.strip()]
    print(f"running bench suite (scale={args.scale}) ...")
    results = run_suite(args.scale, only=only, log=sys.stdout)
    if args.update_baseline:
        write_baseline(args.baseline, results, args.scale)
        print(f"baseline updated: {args.baseline}")
        write_report(args.out, results, args.scale)
        print(f"report written: {args.out}")
        return 0
    baseline = load_baseline(args.baseline)
    gate_result = None
    if baseline is not None:
        gate_result = gate(results, baseline, tolerance=args.tolerance)
    write_report(
        args.out, results, args.scale,
        baseline=baseline, gate_result=gate_result,
        tolerance=args.tolerance,
    )
    print(f"report written: {args.out}")
    if args.gate:
        if baseline is None:
            print(
                f"GATE ERROR: no baseline at {args.baseline}; record one "
                f"with: repro bench --update-baseline",
                file=sys.stderr,
            )
            return 2
        passed, failures = gate_result
        if not passed:
            for failure in failures:
                print(f"GATE FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"gate passed (tolerance {100 * args.tolerance:.0f}%)")
    return 0
